package harness

// The server side of the remote fleet: a TCP listener speaking the JSONL
// wire protocol of wire.go, with a connect-time handshake and periodic
// heartbeats. This is what `hpcc worker -listen addr` runs — the paper's
// farm-of-cheap-workers model cashed out over commodity networking, per
// the cluster-computing successor architecture: any machine that can
// reach the address can farm jobs to it, provided its binary carries the
// same workload registry at the same kernel versions.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Remote protocol timing defaults, shared by both ends so an executor
// with default settings never evicts a worker with default settings on
// an idle-but-healthy connection.
const (
	// DefaultHeartbeatInterval is how often a remote worker proves
	// liveness while a connection is open.
	DefaultHeartbeatInterval = 2 * time.Second
	// DefaultHeartbeatTimeout is how long an executor waits for any
	// frame (result or heartbeat) before declaring a worker dead.
	DefaultHeartbeatTimeout = 15 * time.Second
	// DefaultHandshakeTimeout bounds the hello exchange at connect.
	DefaultHandshakeTimeout = 10 * time.Second
)

// RemoteWorkerServer serves sweep jobs over TCP connections. Each
// connection is handshaken (registry fingerprint + kernel versions; a
// mismatched executor is refused), then jobs stream in as WireJob
// frames and answers stream out as WireResponse frames in completion
// order — the executor pipelines a small window per connection, so jobs
// run concurrently on their own goroutines. A heartbeat frame goes out
// every HeartbeatInterval, which is what lets the executor distinguish
// a long-running job from a dead worker.
type RemoteWorkerServer struct {
	// Registry resolves workload IDs; nil means the Default registry.
	Registry *Registry
	// HeartbeatInterval overrides DefaultHeartbeatInterval; <= 0 keeps
	// the default.
	HeartbeatInterval time.Duration
	// HandshakeTimeout overrides DefaultHandshakeTimeout; <= 0 keeps
	// the default.
	HandshakeTimeout time.Duration
	// Token, when non-empty, is the shared fleet auth token: an executor
	// whose hello carries a different token digest (or none) is refused
	// at handshake with ErrTokenMismatch.
	Token string
	// DrainGrace is how long open connections may keep finishing
	// in-flight jobs after Serve's context is cancelled: the listener
	// closes immediately (no new executors admitted), but connection
	// contexts survive up to this long so answers already being computed
	// still flush instead of being torn mid-write. <= 0 means no grace —
	// cancellation kills connections at once, the historical behavior.
	DrainGrace time.Duration
	// Stderr receives per-connection failure notes; nil discards them.
	Stderr io.Writer
}

func (s *RemoteWorkerServer) reg() *Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return Default
}

func (s *RemoteWorkerServer) heartbeatInterval() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return DefaultHeartbeatInterval
}

func (s *RemoteWorkerServer) handshakeTimeout() time.Duration {
	if s.HandshakeTimeout > 0 {
		return s.HandshakeTimeout
	}
	return DefaultHandshakeTimeout
}

// Serve accepts connections on ln until ctx is cancelled or the
// listener fails. Cancellation closes ln immediately; open connections
// then either die at once (DrainGrace <= 0) or drain — they keep
// finishing in-flight jobs for up to DrainGrace before their contexts
// cancel. Each connection is served on its own goroutines; Serve
// returns only after they have all wound down.
func (s *RemoteWorkerServer) Serve(ctx context.Context, ln net.Listener) error {
	ctx, cancel := context.WithCancel(ctx)
	// Connections run under the drained context so they outlive ctx by
	// the grace period; the listener stays on ctx so no new executor is
	// admitted once shutdown begins.
	connCtx, stopDrain := WithDrain(ctx, s.DrainGrace)
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	// Teardown order matters: cancelling first starts the drain clock
	// (and, with no grace, closes the open connections via each
	// serveConn's AfterFunc), so the wait can actually finish; stopDrain
	// runs only after the wait, or it would kill the drain it grants.
	var wg sync.WaitGroup
	defer stopDrain()
	defer wg.Wait()
	defer cancel()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("harness: remote worker accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.serveConn(connCtx, conn); err != nil && ctx.Err() == nil && s.Stderr != nil {
				fmt.Fprintf(s.Stderr, "hpcc worker: connection %s: %v\n", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveConn owns one executor connection: handshake, then a read loop
// dispatching each job to its own goroutine while a heartbeat ticker
// shares the write side. The connection's jobs are cancelled as soon as
// the connection dies — an executor that vanished is not waited for.
func (s *RemoteWorkerServer) serveConn(ctx context.Context, conn net.Conn) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	fr := newFrameReader(conn)
	conn.SetReadDeadline(time.Now().Add(s.handshakeTimeout())) //lint:ignore hpccdet socket deadlines are wall-clock I/O plumbing, not simulated time
	line, err := fr.next()
	if err != nil {
		return fmt.Errorf("read hello: %w", err)
	}
	remote, err := DecodeWireHello(line)
	if err != nil {
		return err
	}
	local := HelloFor(s.reg(), RoleWorker)
	local.TokenDigest = TokenDigest(s.Token)
	// Answer with our hello even when refusing: the executor derives the
	// same mismatch from the pair and reports it with both versions.
	w := &lockedWriter{w: conn}
	if err := EncodeWire(w, local); err != nil {
		return fmt.Errorf("send hello: %w", err)
	}
	if err := CheckHello(local, remote); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Time{})

	// Heartbeats prove liveness while jobs run; they stop with the
	// connection's context. Teardown must cancel *before* waiting — a
	// dying connection's heartbeat ticker and in-flight jobs only stop
	// once the per-connection context does.
	var hb, jobs sync.WaitGroup
	defer func() {
		cancel()
		jobs.Wait()
		hb.Wait()
	}()
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(s.heartbeatInterval())
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := EncodeWire(w, WireResponse{Heartbeat: true}); err != nil {
					cancel()
					return
				}
			}
		}
	}()

	for {
		line, err := fr.next()
		if err != nil {
			jobs.Wait()
			if errors.Is(err, io.EOF) || ctx.Err() != nil {
				return nil // executor finished (or the server is stopping)
			}
			return fmt.Errorf("read job: %w", err)
		}
		job, err := DecodeWireJob(line)
		if err != nil {
			return err // protocol breach: kill the connection
		}
		jobs.Add(1)
		go func(job WireJob) {
			defer jobs.Done()
			out := runWireJob(ctx, s.reg(), job)
			if ctx.Err() != nil {
				// The connection (or server) is shutting down, so this
				// outcome may be a casualty of our own teardown. Stay
				// silent: reporting it as a workload error would fail the
				// executor's sweep permanently, when re-dispatching the
				// job to a surviving worker is the right outcome.
				return
			}
			if err := EncodeWire(w, WireResponse{WireResult: out}); err != nil {
				cancel()
			}
		}(job)
	}
}
