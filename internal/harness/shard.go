package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// ShardExecutor fans sweep jobs out to child worker processes speaking
// the JSONL wire protocol in wire.go — the first step past one process
// toward the paper's farm-of-cheap-workers model. Each worker process
// (normally `hpcc worker`, re-exec'ed from the same binary) reads one
// WireJob line at a time on stdin and answers with one WireResult line
// on stdout; the executor dispatches jobs dynamically to whichever
// worker is idle and reassembles results in job order, so sharded
// output stays byte-identical to a LocalExecutor run.
//
// Workloads travel by registry ID, so the worker binary must have the
// same workloads registered; only Job.Params crosses the process
// boundary.
type ShardExecutor struct {
	// Shards is the number of worker processes; < 1 means 1, and the
	// executor never starts more workers than jobs.
	Shards int
	// Argv is the worker command line (Argv[0] is the binary path).
	Argv []string
	// Env entries are appended to the inherited environment of each
	// worker.
	Env []string
	// Stderr receives the workers' stderr; nil discards it.
	Stderr io.Writer
	// Drain, when non-nil, requests a graceful stop when it closes:
	// dispatch halts, in-flight wire jobs run to completion under ctx,
	// and Execute returns the completed prefix with ErrDrained. A nil
	// channel never drains.
	Drain <-chan struct{}
}

// waitDelay bounds how long a worker may linger after its stdin closes
// or its context is cancelled before its pipes are forcibly closed.
const waitDelay = 10 * time.Second

// lockedWriter serializes Write calls from concurrent worker stderr
// copiers onto one destination.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// Execute implements Executor across worker processes. Cancelling ctx
// closes every worker's stdin and kills stragglers; a worker that dies
// mid-job surfaces as a *JobError for that job's index.
func (e *ShardExecutor) Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error) {
	if len(e.Argv) == 0 {
		return nil, errors.New("harness: shard executor has no worker command")
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	shards := e.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > len(jobs) {
		shards = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	asm := newAssembler(len(jobs), emit)
	errs := make([]error, len(jobs))
	spawnErrs := make([]error, shards)
	feed := make(chan int)

	// Every worker's stderr lands on one writer; exec copies each
	// child's stream on its own goroutine, so the shared destination
	// must serialize writes itself.
	var stderr io.Writer
	if e.Stderr != nil {
		stderr = &lockedWriter{w: e.Stderr}
	}

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			if err := e.runShard(ctx, cancel, shard, jobs, feed, asm, errs, stderr); err != nil {
				spawnErrs[shard] = err
				cancel()
			}
		}(s)
	}

	var dispatchErr error
dispatch:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			dispatchErr = ctx.Err()
			break dispatch
		case <-e.Drain:
			// A drain stops dispatch only: in-flight wire jobs finish
			// under ctx and the completed prefix remains valid.
			dispatchErr = ErrDrained
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	err := sweepErr(ctx, errs, dispatchErr)
	// A shard that failed to start cancels the sweep, so the remaining
	// error may be the cancellation that failure caused; the spawn
	// failure is the root cause and outranks it.
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		for _, serr := range spawnErrs {
			if serr != nil {
				err = serr
				break
			}
		}
	}
	return asm.completed(), err
}

// runShard owns one worker process for the life of the sweep: it pulls
// job indices off feed, round-trips each over the wire, and records
// results and per-job errors. The returned error covers only failures
// to run the worker at all — per-job failures (including a worker crash
// mid-job) are mapped onto the in-flight job's errs slot instead.
func (e *ShardExecutor) runShard(ctx context.Context, cancel func(), shard int, jobs []Job, feed <-chan int, asm *assembler, errs []error, stderr io.Writer) error {
	cmd := exec.CommandContext(ctx, e.Argv[0], e.Argv[1:]...)
	cmd.Env = append(os.Environ(), e.Env...)
	cmd.Stderr = stderr
	cmd.WaitDelay = waitDelay
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("harness: shard %d: %w", shard, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("harness: shard %d: %w", shard, err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("harness: shard %d: start worker %s: %w", shard, e.Argv[0], err)
	}
	// Closing stdin is the graceful shutdown signal: the worker exits at
	// EOF. CommandContext kills stragglers once ctx is cancelled, and
	// WaitDelay bounds the wait either way.
	defer func() {
		stdin.Close()
		cmd.Wait()
	}()

	fr := newFrameReader(stdout)
	for {
		var i int
		select {
		case idx, ok := <-feed:
			if !ok {
				return nil
			}
			i = idx
		case <-ctx.Done():
			return nil
		}

		job := jobs[i]
		if job.Workload == nil {
			errs[i] = &JobError{Index: i, WorkloadID: "", Err: fmt.Errorf("nil workload")}
			cancel()
			continue
		}
		id := job.Workload.ID()
		fail := func(err error) {
			// A transport failure during cancellation is a victim of the
			// kill, not a root cause; report it as the cancellation so
			// the sweep's error reflects what actually went wrong.
			if ctxErr := ctx.Err(); ctxErr != nil {
				err = ctxErr
			}
			errs[i] = &JobError{Index: i, WorkloadID: id, Err: err}
			cancel()
		}

		if err := EncodeWire(stdin, WireJob{Index: i, WorkloadID: id, Params: job.Params}); err != nil {
			fail(fmt.Errorf("shard %d: send job: %w", shard, err))
			return nil
		}
		line, readErr := fr.next()
		if readErr != nil {
			// A clean EOF here is still a protocol failure — the worker
			// owed an answer; ErrTruncatedFrame means it died mid-write
			// and the tear is reported as such instead of being parsed.
			if errors.Is(readErr, io.EOF) {
				readErr = io.ErrUnexpectedEOF
			}
			// Snapshot cancellation state before cancelling ourselves,
			// then cancel *before* waiting: a worker that closed stdout
			// but is still running would otherwise block Wait forever —
			// only a cancelled CommandContext kills it.
			ctxErr := ctx.Err()
			stdin.Close()
			cancel()
			waitErr := cmd.Wait()
			err := fmt.Errorf("shard %d: worker exited before answering job %d: %v (wait: %v)", shard, i, readErr, waitErr)
			if ctxErr != nil {
				// The read failed because the sweep was already being
				// cancelled and the kill tore the pipe down; report the
				// cancellation, not the teardown.
				err = ctxErr
			}
			errs[i] = &JobError{Index: i, WorkloadID: id, Err: err}
			return nil
		}
		wr, err := DecodeWireResult(line)
		if err != nil {
			fail(fmt.Errorf("shard %d: %w", shard, err))
			return nil
		}
		if wr.Index != i {
			fail(fmt.Errorf("shard %d: worker answered job %d, want %d", shard, wr.Index, i))
			return nil
		}
		if wr.Error != "" {
			if wr.Panic {
				// The worker contained the panic; contain it here too —
				// record the typed failure and keep the sweep going.
				errs[i] = &JobError{Index: i, WorkloadID: id, Panic: true, Err: errors.New(wr.Error)}
				asm.fail(i)
				continue
			}
			errs[i] = &JobError{Index: i, WorkloadID: id, Err: errors.New(wr.Error)}
			cancel()
			continue
		}
		res := *wr.Result
		if res.WorkloadID == "" {
			res.WorkloadID = id
		}
		asm.complete(i, res)
	}
}
