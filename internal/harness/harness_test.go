package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func spec(id string, f func(ctx context.Context, p Params) (Result, error)) Spec {
	return Spec{
		WorkloadID: id,
		Desc:       "test workload " + id,
		Space:      []Param{{Name: "n", Default: "1", Doc: "size"}},
		RunFunc:    f,
	}
}

func echo(id string) Spec {
	return spec(id, func(_ context.Context, p Params) (Result, error) {
		n, err := p.Int("n", 1)
		if err != nil {
			return Result{}, err
		}
		return Result{
			WorkloadID: id,
			Text:       fmt.Sprintf("%s n=%d quick=%v\n", id, n, p.Quick),
		}, nil
	})
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(echo("a/one")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(echo("a/two")); err != nil {
		t.Fatal(err)
	}
	w, err := r.Lookup("a/one")
	if err != nil {
		t.Fatal(err)
	}
	if w.ID() != "a/one" {
		t.Fatalf("lookup returned %q", w.ID())
	}
	// Case-insensitive, like the old core.RunExperiment.
	if w, err = r.Lookup("A/ONE"); err != nil || w.ID() != "a/one" {
		t.Fatalf("case-insensitive lookup: %v, %v", w, err)
	}
}

func TestRegistryDuplicateAndEmptyID(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(echo("dup")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(echo("dup")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(echo("  ")); err == nil {
		t.Fatal("blank ID accepted")
	}
}

func TestRegistryUnknownListsIDs(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"b", "a"} {
		if err := r.Register(echo(id)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.Lookup("zzz")
	if err == nil {
		t.Fatal("unknown ID accepted")
	}
	for _, want := range []string{"zzz", "a", "b"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestRegistryOrderExhibitsFirst(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"nren/storm", "E10", "app/cg", "E2", "E1", "linpack/delta"} {
		if err := r.Register(echo(id)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.IDs()
	want := []string{"E1", "E2", "E10", "app/cg", "linpack/delta", "nren/storm"}
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	all := r.All()
	for i, w := range all {
		if w.ID() != want[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, w.ID(), want[i])
		}
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{}.WithValue("n", "42").WithValue("rate", "2.5")
	if v := p.Value("missing", "def"); v != "def" {
		t.Fatalf("Value default = %q", v)
	}
	n, err := p.Int("n", 0)
	if err != nil || n != 42 {
		t.Fatalf("Int = %d, %v", n, err)
	}
	f, err := p.Float("rate", 0)
	if err != nil || f != 2.5 {
		t.Fatalf("Float = %g, %v", f, err)
	}
	if _, err := p.WithValue("n", "xyz").Int("n", 0); err == nil {
		t.Fatal("bad int accepted")
	}
	// WithValue must not mutate the receiver.
	base := Params{Values: map[string]string{"n": "1"}}
	_ = base.WithValue("n", "2")
	if base.Values["n"] != "1" {
		t.Fatal("WithValue mutated receiver")
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	var jobs []Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, Job{
			Workload: echo(fmt.Sprintf("w%02d", i)),
			Params:   Params{Seed: int64(i)}.WithValue("n", fmt.Sprint(i)),
		})
	}
	seq, err := Sweep(context.Background(), jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) != len(jobs) {
		t.Fatalf("lengths: seq %d par %d", len(seq), len(par))
	}
	var a, b strings.Builder
	for i := range seq {
		a.WriteString(seq[i].Text)
		b.WriteString(par[i].Text)
	}
	if a.String() != b.String() {
		t.Fatalf("parallel output differs from sequential:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestSweepFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var jobs []Job
	for i := 0; i < 16; i++ {
		i := i
		jobs = append(jobs, Job{Workload: spec(fmt.Sprintf("w%d", i),
			func(context.Context, Params) (Result, error) {
				if i == 3 || i == 11 {
					return Result{}, boom
				}
				return Result{Text: "ok"}, nil
			})})
	}
	_, err := Sweep(context.Background(), jobs, 4)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T", err)
	}
	if je.Index != 3 {
		t.Fatalf("first error index = %d, want 3", je.Index)
	}
}

func TestSweepContextCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	var jobs []Job
	for i := 0; i < 64; i++ {
		jobs = append(jobs, Job{Workload: spec(fmt.Sprintf("w%d", i),
			func(c context.Context, _ Params) (Result, error) {
				started <- struct{}{}
				<-c.Done()
				return Result{}, c.Err()
			})})
	}
	go func() {
		<-started // at least one job is running
		cancel()
	}()
	_, err := Sweep(ctx, jobs, 2)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := len(started); n >= 64 {
		t.Fatalf("all %d jobs started despite cancellation", n)
	}
}

func TestSweepEmptyAndDefaults(t *testing.T) {
	res, err := Sweep(context.Background(), nil, 0)
	if err != nil || res != nil {
		t.Fatalf("empty sweep: %v, %v", res, err)
	}
	// workers<1 falls back to DefaultWorkers and still completes.
	res, err = Sweep(context.Background(), []Job{{Workload: echo("solo")}}, 0)
	if err != nil || len(res) != 1 {
		t.Fatalf("default workers sweep: %v, %v", res, err)
	}
	if res[0].WorkloadID != "solo" {
		t.Fatalf("WorkloadID = %q", res[0].WorkloadID)
	}
}

func TestSweepValues(t *testing.T) {
	res, err := SweepValues(context.Background(), echo("sv"), Params{},
		"n", []string{"1", "2", "3"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"n=1", "n=2", "n=3"} {
		if !strings.Contains(res[i].Text, want) {
			t.Fatalf("result %d = %q, want %s", i, res[i].Text, want)
		}
	}
}

// Regression test for the partial-result ambiguity: a failed sweep used
// to return a full-length slice whose unfinished slots held zero-value
// Result{} placeholders, indistinguishable from real results — a persist
// path could store them. Now only the longest fully-completed prefix
// comes back.
func TestSweepFailureReturnsOnlyCompletedPrefix(t *testing.T) {
	boom := errors.New("boom")
	var jobs []Job
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, Job{Workload: spec(fmt.Sprintf("w%d", i),
			func(context.Context, Params) (Result, error) {
				if i == 2 {
					return Result{}, boom
				}
				return Result{Text: fmt.Sprintf("ok %d\n", i)}, nil
			})})
	}
	results, err := Sweep(context.Background(), jobs, len(jobs))
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("want the completed prefix [0,2), got %d results", len(results))
	}
	for i, r := range results {
		if r.WorkloadID != fmt.Sprintf("w%d", i) || r.Text == "" {
			t.Fatalf("result %d is not the real job result: %+v", i, r)
		}
	}
}

func TestLocalExecutorEmitStreamsInOrder(t *testing.T) {
	var jobs []Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, Job{Workload: echo(fmt.Sprintf("e%02d", i))})
	}
	var seen []int
	emit := func(i int, r Result) {
		if r.WorkloadID != fmt.Sprintf("e%02d", i) {
			t.Errorf("emit %d got result for %s", i, r.WorkloadID)
		}
		seen = append(seen, i) // emit is serialized by contract: no lock needed
	}
	results, err := LocalExecutor{Workers: 8}.Execute(context.Background(), jobs, emit)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) || len(seen) != len(jobs) {
		t.Fatalf("results %d, emitted %d, want %d", len(results), len(seen), len(jobs))
	}
	for i, got := range seen {
		if got != i {
			t.Fatalf("emit order %v not ascending", seen)
		}
	}
}

func TestSpecMetricDirsStamped(t *testing.T) {
	s := Spec{
		WorkloadID: "dir/test",
		MetricDirs: map[string]string{"score": DirLower, "rate": DirHigher},
		RunFunc: func(context.Context, Params) (Result, error) {
			r := Result{Text: "x\n"}
			r.AddMetric("score", 10, "")
			r.AddMetric("rate", 5, "MB/s")
			r.AddMetric("other", 1, "")
			r.Metrics = append(r.Metrics, Metric{Name: "score", Value: 2, Dir: DirHigher})
			return r, nil
		},
	}
	res, err := s.Run(context.Background(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{DirLower, DirHigher, "", DirHigher}
	for i, m := range res.Metrics {
		if m.Dir != want[i] {
			t.Fatalf("metric %d (%s) Dir = %q, want %q", i, m.Name, m.Dir, want[i])
		}
	}
}

func TestResultJSON(t *testing.T) {
	r := Result{WorkloadID: "x", Title: "T", Text: "body\n"}
	r.AddMetric("gflops", 13.0, "GFLOPS")
	s, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workload": "x"`, `"gflops"`, `"GFLOPS"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %s:\n%s", want, s)
		}
	}
}
