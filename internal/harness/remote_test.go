package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startRemoteWorker runs a RemoteWorkerServer over reg on a loopback
// listener and returns its address plus an idempotent kill function
// (also registered as cleanup) that tears down the server and every
// open connection.
func startRemoteWorker(t *testing.T, reg *Registry) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &RemoteWorkerServer{Registry: reg, HeartbeatInterval: 50 * time.Millisecond}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, ln)
	}()
	var once sync.Once
	kill := func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(kill)
	return ln.Addr().String(), kill
}

// fakeWorker runs a hand-rolled worker that completes the handshake
// over reg and then hands the connection to handle — for servers that
// misbehave *after* connect (crash mid-job, go silent, ...).
func fakeWorker(t *testing.T, reg *Registry, handle func(conn net.Conn, fr *frameReader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				fr := newFrameReader(conn)
				if _, err := fr.next(); err != nil {
					return
				}
				if err := EncodeWire(conn, HelloFor(reg, RoleWorker)); err != nil {
					return
				}
				handle(conn, fr)
			}()
		}
	}()
	return ln.Addr().String()
}

// remoteExec builds an executor for tests: short heartbeat timeout so
// eviction tests run fast, eviction notes captured in the returned
// buffer.
func remoteExec(reg *Registry, addrs ...string) (*RemoteExecutor, *bytes.Buffer) {
	var stderr bytes.Buffer
	return &RemoteExecutor{
		Addrs:            addrs,
		Registry:         reg,
		HeartbeatTimeout: 2 * time.Second,
		Stderr:           &stderr,
	}, &stderr
}

// assertSameResults compares two result slices by rendered JSON — the
// byte-identity bar every executor has to clear.
func assertSameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		a, _ := want[i].JSON()
		b, _ := got[i].JSON()
		if a != b {
			t.Fatalf("%s: result %d differs:\n%s\n---\n%s", label, i, a, b)
		}
	}
}

// orderedEmit records emitted indexes and fails the test if they ever
// arrive out of order or twice — the never-lose-never-duplicate check.
func orderedEmit(t *testing.T) (func(int, Result), func() []int) {
	var mu sync.Mutex
	var seen []int
	emit := func(i int, _ Result) {
		mu.Lock()
		defer mu.Unlock()
		if len(seen) > 0 && seen[len(seen)-1] >= i {
			t.Errorf("emit order violated: %v then %d", seen, i)
		}
		seen = append(seen, i)
	}
	return emit, func() []int {
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), seen...)
	}
}

func TestRemoteMatchesLocalByteIdentical(t *testing.T) {
	reg := shardTestRegistry()
	jobs := shardEchoJobs(t, 20)
	local, err := LocalExecutor{Workers: 4}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3} {
		addrs := make([]string, workers)
		for i := range addrs {
			addrs[i], _ = startRemoteWorker(t, reg)
		}
		ex, _ := remoteExec(reg, addrs...)
		emit, seen := orderedEmit(t)
		got, err := ex.Execute(context.Background(), jobs, emit)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameResults(t, fmt.Sprintf("workers=%d", workers), got, local)
		if len(seen()) != len(jobs) {
			t.Fatalf("workers=%d: emitted %d of %d", workers, len(seen()), len(jobs))
		}
	}
}

func TestRemoteWorkloadErrorIsJobErrorAndNotRetried(t *testing.T) {
	var calls atomic.Int32
	workerReg := NewRegistry()
	execReg := NewRegistry()
	for _, reg := range []*Registry{workerReg, execReg} {
		if err := reg.Register(echo("r/echo")); err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(spec("r/fail", func(context.Context, Params) (Result, error) {
			calls.Add(1)
			return Result{}, errors.New("deliberate failure")
		})); err != nil {
			t.Fatal(err)
		}
	}
	addr, _ := startRemoteWorker(t, workerReg)
	fail, err := execReg.Lookup("r/fail")
	if err != nil {
		t.Fatal(err)
	}
	ec, err := execReg.Lookup("r/echo")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Workload: ec, Params: Params{}.WithValue("n", fmt.Sprint(i))}
	}
	jobs[2] = Job{Workload: fail}

	ex, _ := remoteExec(execReg, addr)
	results, err := ex.Execute(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("failing workload reported no error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if je.Index != 2 || je.WorkloadID != "r/fail" || !strings.Contains(je.Err.Error(), "deliberate failure") {
		t.Fatalf("wrong job error: %+v", je)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("failing workload ran %d times; workload errors must not be retried", got)
	}
	if len(results) > 2 {
		t.Fatalf("results reach past the failed job: %d", len(results))
	}
}

func TestRemoteFingerprintMismatchRefusedAtConnect(t *testing.T) {
	execReg := NewRegistry()
	if err := execReg.Register(echo("r/echo")); err != nil {
		t.Fatal(err)
	}
	if err := execReg.Register(echo("r/only-local")); err != nil {
		t.Fatal(err)
	}
	workerReg := NewRegistry()
	if err := workerReg.Register(echo("r/echo")); err != nil {
		t.Fatal(err)
	}
	addr, _ := startRemoteWorker(t, workerReg)
	w, _ := execReg.Lookup("r/echo")
	ex, _ := remoteExec(execReg, addr)
	_, err := ex.Execute(context.Background(), []Job{{Workload: w}}, nil)
	if err == nil {
		t.Fatal("mismatched worker accepted")
	}
	for _, want := range []string{"refused", "registry mismatch", "r/only-local", "not registered on the remote worker"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error missing %q: %v", want, err)
		}
	}
}

func TestRemoteStaleVersionRefusedNamingBothVersions(t *testing.T) {
	versioned := func(version string) *Registry {
		reg := NewRegistry()
		s := spec("r/kernel", func(_ context.Context, p Params) (Result, error) {
			return Result{WorkloadID: "r/kernel", Text: "v\n"}, nil
		})
		s.Version = version
		if err := reg.Register(s); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	execReg := versioned("v2")
	addr, _ := startRemoteWorker(t, versioned("v1")) // stale worker
	w, _ := execReg.Lookup("r/kernel")
	ex, _ := remoteExec(execReg, addr)
	_, err := ex.Execute(context.Background(), []Job{{Workload: w}}, nil)
	if err == nil {
		t.Fatal("stale-version worker accepted")
	}
	for _, want := range []string{"refused", `local version "v2"`, `remote version "v1"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("stale-version error missing %q: %v", want, err)
		}
	}
}

// counterReg builds a registry whose "r/job" workload renders a
// deterministic result from params and counts its runs — two instances
// share IDs and versions (so fingerprints agree) but count separately,
// which is how the tests see *where* each job actually ran.
func counterReg(t *testing.T, calls *atomic.Int32, delay time.Duration) *Registry {
	t.Helper()
	reg := NewRegistry()
	err := reg.Register(spec("r/job", func(_ context.Context, p Params) (Result, error) {
		calls.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		n, err := p.Int("n", 0)
		if err != nil {
			return Result{}, err
		}
		return Result{WorkloadID: "r/job", Text: fmt.Sprintf("r/job n=%d\n", n)}, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func counterJobs(t *testing.T, reg *Registry, n int) []Job {
	t.Helper()
	w, err := reg.Lookup("r/job")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Workload: w, Params: Params{}.WithValue("n", fmt.Sprint(i))}
	}
	return jobs
}

func TestRemoteWorkerKilledMidJobRedispatches(t *testing.T) {
	const n = 8
	started := make(chan struct{}, n)
	blockReg := NewRegistry()
	err := blockReg.Register(spec("r/job", func(ctx context.Context, _ Params) (Result, error) {
		// Same ID and version as counterReg's r/job — the fingerprints
		// match — but this instance hangs until its connection dies, so
		// every job landing here must be re-dispatched.
		started <- struct{}{}
		<-ctx.Done()
		return Result{}, ctx.Err()
	}))
	if err != nil {
		t.Fatal(err)
	}
	var fastCalls, localCalls atomic.Int32
	execReg := counterReg(t, &localCalls, 0)
	jobs := counterJobs(t, execReg, n)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}

	addr0, kill0 := startRemoteWorker(t, blockReg)
	addr1, _ := startRemoteWorker(t, counterReg(t, &fastCalls, 0))
	ex, stderr := remoteExec(execReg, addr0, addr1)
	emit, seen := orderedEmit(t)

	type out struct {
		results []Result
		err     error
	}
	done := make(chan out, 1)
	go func() {
		res, err := ex.Execute(context.Background(), jobs, emit)
		done <- out{res, err}
	}()
	<-started // worker 0 is now hanging mid-job
	kill0()   // and dies, stranding its window and queue

	var got out
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung after worker death")
	}
	if got.err != nil {
		t.Fatalf("sweep failed after worker death: %v", got.err)
	}
	assertSameResults(t, "after kill", got.results, want)
	if idxs := seen(); len(idxs) != n {
		t.Fatalf("emitted %d of %d indexes: %v", len(idxs), n, idxs)
	}
	if fastCalls.Load() != n {
		t.Fatalf("surviving worker ran %d of %d jobs", fastCalls.Load(), n)
	}
	if !strings.Contains(stderr.String(), "evicted") {
		t.Fatalf("eviction not reported: %q", stderr.String())
	}
}

func TestRemoteCrashedConnRedispatchesToSurvivor(t *testing.T) {
	var fastCalls atomic.Int32
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 6)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 handshakes fine, reads one job, and drops the connection
	// without answering.
	crasher := fakeWorker(t, execReg, func(conn net.Conn, fr *frameReader) {
		fr.next()
	})
	addr1, _ := startRemoteWorker(t, counterReg(t, &fastCalls, 0))
	ex, stderr := remoteExec(execReg, crasher, addr1)
	got, err := ex.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("sweep failed after conn crash: %v", err)
	}
	assertSameResults(t, "after crash", got, want)
	if fastCalls.Load() != int32(len(jobs)) {
		t.Fatalf("survivor ran %d of %d jobs", fastCalls.Load(), len(jobs))
	}
	if !strings.Contains(stderr.String(), "evicted") {
		t.Fatalf("eviction not reported: %q", stderr.String())
	}
}

func TestRemoteRetryBudgetBounded(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 4)
	crasher := fakeWorker(t, execReg, func(conn net.Conn, fr *frameReader) {
		fr.next()
	})
	addr1, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
	ex, _ := remoteExec(execReg, crasher, addr1)
	ex.MaxAttempts = 1 // one send is the whole budget
	_, err := ex.Execute(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("exhausted retry budget reported no error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "re-dispatch budget exhausted") {
		t.Fatalf("budget error unclear: %v", err)
	}
}

func TestRemoteHeartbeatEviction(t *testing.T) {
	var fastCalls atomic.Int32
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 6)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 accepts jobs and then goes completely silent: no results,
	// no heartbeats. Only the deadline can unmask it.
	silent := fakeWorker(t, execReg, func(conn net.Conn, fr *frameReader) {
		for {
			if _, err := fr.next(); err != nil {
				return
			}
		}
	})
	addr1, _ := startRemoteWorker(t, counterReg(t, &fastCalls, 0))
	ex, stderr := remoteExec(execReg, silent, addr1)
	ex.HeartbeatTimeout = 300 * time.Millisecond
	got, err := ex.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("sweep failed after silent worker: %v", err)
	}
	assertSameResults(t, "after silence", got, want)
	if fastCalls.Load() != int32(len(jobs)) {
		t.Fatalf("survivor ran %d of %d jobs", fastCalls.Load(), len(jobs))
	}
	if !strings.Contains(stderr.String(), "no heartbeat within") {
		t.Fatalf("heartbeat eviction not reported: %q", stderr.String())
	}
}

func TestRemoteWorkStealing(t *testing.T) {
	var slowCalls, fastCalls atomic.Int32
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 8)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr0, _ := startRemoteWorker(t, counterReg(t, &slowCalls, 150*time.Millisecond))
	addr1, _ := startRemoteWorker(t, counterReg(t, &fastCalls, 0))
	ex, _ := remoteExec(execReg, addr0, addr1)
	ex.Window = 1 // one in flight on the slow node; the rest is stealable
	got, err := ex.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "stolen", got, want)
	if fastCalls.Load() < 5 {
		t.Fatalf("fast worker ran only %d of 8 jobs; queued work was not stolen from the slow node",
			fastCalls.Load())
	}
}

func TestRemoteRejectsNoAddrs(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	if _, err := (&RemoteExecutor{Registry: execReg}).Execute(context.Background(), counterJobs(t, execReg, 2), nil); err == nil {
		t.Fatal("executor with no addresses accepted")
	}
}

func TestRemoteAllWorkersUnreachable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	execReg := counterReg(t, new(atomic.Int32), 0)
	// Tiny backoffs: the redial loop still runs its full budget against
	// the dead address, just without wall-clock cost.
	_, err = (&RemoteExecutor{
		Addrs:            []string{dead, dead},
		Registry:         execReg,
		RedialBackoff:    time.Millisecond,
		RedialMaxBackoff: 2 * time.Millisecond,
	}).Execute(context.Background(), counterJobs(t, execReg, 3), nil)
	if err == nil {
		t.Fatal("unreachable fleet reported no error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "no live workers remain") || !strings.Contains(err.Error(), "dial") {
		t.Fatalf("unreachable-fleet error unclear: %v", err)
	}
}

func TestRemoteCancellation(t *testing.T) {
	blockReg := NewRegistry()
	err := blockReg.Register(spec("r/job", func(ctx context.Context, _ Params) (Result, error) {
		<-ctx.Done()
		return Result{}, ctx.Err()
	}))
	if err != nil {
		t.Fatal(err)
	}
	execReg := counterReg(t, new(atomic.Int32), 0)
	addr, _ := startRemoteWorker(t, blockReg)
	ex, _ := remoteExec(execReg, addr)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := ex.Execute(ctx, counterJobs(t, execReg, 4), nil)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("cancellation did not stop the remote sweep")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
