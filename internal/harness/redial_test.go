package harness

// Tests for the evict → backoff → redial → readmit loop: a restarted
// worker rejoins the pool mid-sweep, output stays byte-identical to
// LocalExecutor, the backoff schedule is deterministic under an
// injected clock, and failures that cannot heal (auth) never redial.

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// instantSleep makes the redial loop spin without wall-clock cost.
func instantSleep(context.Context, time.Duration) error { return nil }

// swappableDial returns a Dial func that resolves the symbolic address
// to whatever target currently holds, so a test can "restart" a worker
// by pointing the same fleet slot at a fresh listener.
func swappableDial(symbolic string, target *atomic.Value) func(context.Context, string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if addr == symbolic {
			addr = target.Load().(string)
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

// hangReg registers an r/job (same ID and version as counterReg's, so
// fingerprints agree) that signals started and then blocks until its
// connection dies — the worker every kill-mid-job test needs.
func hangReg(t *testing.T, started chan<- struct{}) *Registry {
	t.Helper()
	reg := NewRegistry()
	err := reg.Register(spec("r/job", func(ctx context.Context, _ Params) (Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return Result{}, ctx.Err()
	}))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRemoteRedialReadmitsRevivedWorker(t *testing.T) {
	const n = 12
	started := make(chan struct{}, n)
	var revivedCalls atomic.Int32
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, n)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet slot "revivable" first resolves to a worker that hangs on its
	// first job and is then killed; the replacement on a fresh listener
	// runs jobs for real. The survivor is slow so the revived worker has
	// queued work left to steal when it rejoins.
	oldAddr, killOld := startRemoteWorker(t, hangReg(t, started))
	newAddr, _ := startRemoteWorker(t, counterReg(t, &revivedCalls, 0))
	survivor, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 30*time.Millisecond))

	var target atomic.Value
	target.Store(oldAddr)
	ex, stderr := remoteExec(execReg, "revivable", survivor)
	ex.Dial = swappableDial("revivable", &target)
	ex.Sleep = instantSleep

	type out struct {
		results []Result
		err     error
	}
	done := make(chan out, 1)
	go func() {
		res, err := ex.Execute(context.Background(), jobs, nil)
		done <- out{res, err}
	}()
	<-started // the doomed worker is now hanging mid-job
	target.Store(newAddr)
	killOld()

	var got out
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung across the kill-and-revive")
	}
	if got.err != nil {
		t.Fatalf("sweep failed across the kill-and-revive: %v", got.err)
	}
	assertSameResults(t, "kill-and-revive", got.results, want)
	if revivedCalls.Load() == 0 {
		t.Fatal("revived worker ran no jobs; it was never readmitted to the pool")
	}
	for _, note := range []string{"evicted", "redial pending", "readmitted"} {
		if !strings.Contains(stderr.String(), note) {
			t.Fatalf("redial lifecycle note %q missing from stderr: %q", note, stderr.String())
		}
	}
}

func TestRemoteRedialParksJobsWhileEveryWorkerIsDown(t *testing.T) {
	// Single-address fleet: between the kill and the readmission there are
	// zero live workers. The stranded jobs must park on the redialing
	// queue, not fail with "no live workers remain".
	const n = 6
	started := make(chan struct{}, n)
	var revivedCalls atomic.Int32
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, n)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}

	oldAddr, killOld := startRemoteWorker(t, hangReg(t, started))
	newAddr, _ := startRemoteWorker(t, counterReg(t, &revivedCalls, 0))
	var target atomic.Value
	target.Store(oldAddr)
	ex, _ := remoteExec(execReg, "solo")
	ex.Dial = swappableDial("solo", &target)
	ex.Sleep = instantSleep

	type out struct {
		results []Result
		err     error
	}
	done := make(chan out, 1)
	go func() {
		res, err := ex.Execute(context.Background(), jobs, nil)
		done <- out{res, err}
	}()
	<-started
	target.Store(newAddr)
	killOld()

	var got out
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung with every worker down")
	}
	if got.err != nil {
		t.Fatalf("jobs failed instead of parking for the readmission: %v", got.err)
	}
	assertSameResults(t, "parked", got.results, want)
	if revivedCalls.Load() != n {
		t.Fatalf("revived worker ran %d of %d jobs", revivedCalls.Load(), n)
	}
}

func TestRemoteRedialBackoffScheduleDeterministic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	execReg := counterReg(t, new(atomic.Int32), 0)
	const base, maxBackoff = 100 * time.Millisecond, 400 * time.Millisecond

	schedule := func() []time.Duration {
		var mu sync.Mutex
		var ds []time.Duration
		ex := &RemoteExecutor{
			Addrs:            []string{dead},
			Registry:         execReg,
			RedialBackoff:    base,
			RedialMaxBackoff: maxBackoff,
			Sleep: func(_ context.Context, d time.Duration) error {
				mu.Lock()
				ds = append(ds, d)
				mu.Unlock()
				return nil
			},
		}
		if _, err := ex.Execute(context.Background(), counterJobs(t, execReg, 2), nil); err == nil {
			t.Fatal("dead address reported no error")
		}
		mu.Lock()
		defer mu.Unlock()
		return ds
	}

	first := schedule()
	if len(first) != DefaultRedialAttempts {
		t.Fatalf("slept %d times, want one per redial attempt (%d): %v", len(first), DefaultRedialAttempts, first)
	}
	for k, d := range first {
		nominal := base << k
		if nominal > maxBackoff {
			nominal = maxBackoff
		}
		if d < nominal/2 || d > nominal {
			t.Fatalf("attempt %d slept %v, outside the jitter band [%v, %v]", k+1, d, nominal/2, nominal)
		}
	}
	second := schedule()
	if len(second) != len(first) {
		t.Fatalf("schedules differ in length: %v vs %v", first, second)
	}
	for k := range first {
		if first[k] != second[k] {
			t.Fatalf("jitter is not deterministic: run 1 %v, run 2 %v", first, second)
		}
	}
}

func TestRemoteRedialDisabledKeepsEvictionFinal(t *testing.T) {
	var fastCalls atomic.Int32
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 6)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	crasher := fakeWorker(t, execReg, func(conn net.Conn, fr *frameReader) {
		fr.next() // read one job, then drop the connection
	})
	survivor, _ := startRemoteWorker(t, counterReg(t, &fastCalls, 0))

	var mu sync.Mutex
	dials := map[string]int{}
	ex, stderr := remoteExec(execReg, crasher, survivor)
	ex.RedialAttempts = -1
	ex.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
		mu.Lock()
		dials[addr]++
		mu.Unlock()
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	got, err := ex.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	assertSameResults(t, "redial disabled", got, want)
	mu.Lock()
	crasherDials := dials[crasher]
	mu.Unlock()
	if crasherDials != 1 {
		t.Fatalf("crashed address dialed %d times with redial disabled, want 1", crasherDials)
	}
	if !strings.Contains(stderr.String(), "address abandoned") {
		t.Fatalf("final eviction not reported: %q", stderr.String())
	}
}

// startTokenWorker is startRemoteWorker with a fleet auth token set.
func startTokenWorker(t *testing.T, reg *Registry, token string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &RemoteWorkerServer{Registry: reg, Token: token, HeartbeatInterval: 50 * time.Millisecond}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

func TestRemoteTokenMismatchIsTypedAndNeverRedialed(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	addr := startTokenWorker(t, execReg, "sesame")

	var dials atomic.Int32
	ex, _ := remoteExec(execReg, addr)
	ex.Token = "wrong"
	ex.Sleep = instantSleep
	ex.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
		dials.Add(1)
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	_, err := ex.Execute(context.Background(), counterJobs(t, execReg, 3), nil)
	if err == nil {
		t.Fatal("token mismatch accepted")
	}
	if !errors.Is(err, ErrTokenMismatch) {
		t.Fatalf("want ErrTokenMismatch in the chain, got %v", err)
	}
	if !strings.Contains(err.Error(), "token") {
		t.Fatalf("mismatch error does not mention the token: %v", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("auth refusal was redialed %d times; it cannot heal and must not retry", got-1)
	}
}

func TestRemoteTokenMatchRunsByteIdentical(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 6)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := startTokenWorker(t, counterReg(t, new(atomic.Int32), 0), "sesame")
	ex, _ := remoteExec(execReg, addr)
	ex.Token = "sesame"
	got, err := ex.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("matching tokens refused: %v", err)
	}
	assertSameResults(t, "token match", got, want)
}

func TestRemoteRedialHealsRefusedDials(t *testing.T) {
	// The worker is "not up yet": its first dials are refused at the
	// transport. The redial loop must ride out the refusals and land the
	// full sweep byte-identically.
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 8)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr0, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
	addr1, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
	ex, stderr := remoteExec(execReg, addr0, addr1)
	ex.Sleep = instantSleep
	cx := NewChaosExecutor(ex, ChaosPlan{Seed: 7, RefuseDials: 2}, addr0)
	got, err := cx.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("sweep failed across refused dials: %v", err)
	}
	assertSameResults(t, "refused dials", got, want)
	if !strings.Contains(stderr.String(), "readmitted") {
		t.Fatalf("refused worker never readmitted: %q", stderr.String())
	}
}

func TestRemoteRedialHealsDroppedHandshakes(t *testing.T) {
	// The worker accepts and dies before speaking — the half-up state
	// between refused and healthy. Same bar: redial through it.
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 8)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr0, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
	addr1, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
	ex, stderr := remoteExec(execReg, addr0, addr1)
	ex.Sleep = instantSleep
	cx := NewChaosExecutor(ex, ChaosPlan{Seed: 11, DropHandshakes: 2}, addr0)
	got, err := cx.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("sweep failed across dropped handshakes: %v", err)
	}
	assertSameResults(t, "dropped handshakes", got, want)
	if !strings.Contains(stderr.String(), "readmitted") {
		t.Fatalf("half-up worker never readmitted: %q", stderr.String())
	}
}
