package harness

import (
	"context"
	"sync"
)

// Executor runs a batch of sweep jobs and assembles their Results in job
// order. Two implementations exist: LocalExecutor, the in-process
// goroutine pool Sweep has always used, and ShardExecutor (shard.go),
// which fans jobs out to child worker processes over the JSONL wire
// protocol in wire.go. Both promise the same contract, so output is
// byte-identical whichever executor a sweep runs on.
type Executor interface {
	// Execute runs jobs and returns their Results in job order. On
	// failure it returns the error of the lowest-indexed failed job
	// (typically a *JobError) and only the longest fully-completed
	// prefix of results — never zero-value placeholders.
	//
	// emit, when non-nil, is called with (index, result) in strictly
	// ascending index order as the completed prefix grows, so callers
	// can stream finished results while later jobs are still running.
	// Calls are serialized; emit never runs concurrently with itself.
	Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error)
}

// LocalExecutor runs jobs on a pool of goroutines in this process — the
// sweep engine's classic mode.
type LocalExecutor struct {
	// Workers is the pool size; < 1 means DefaultWorkers().
	Workers int
}

// Execute implements Executor on the in-process pool.
func (e LocalExecutor) Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error) {
	return sweepEmit(ctx, jobs, e.Workers, emit)
}

// assembler collects out-of-order job completions and surfaces them as
// an in-order completed prefix: results[i] becomes visible (and is
// emitted) only once every result before it has landed. Both executors
// share it, which is what keeps their output byte-identical.
type assembler struct {
	mu      sync.Mutex
	results []Result
	done    []bool
	next    int // first index not yet part of the completed prefix
	emit    func(int, Result)
	// emitMu serializes emit batches without holding mu, so a slow
	// consumer stalls only the emitting goroutine — the rest of the pool
	// keeps completing jobs and buffering results.
	emitMu sync.Mutex
}

func newAssembler(n int, emit func(int, Result)) *assembler {
	return &assembler{results: make([]Result, n), done: make([]bool, n), emit: emit}
}

// complete records job i's result and advances the completed prefix,
// emitting every newly contiguous result in index order.
func (a *assembler) complete(i int, r Result) {
	a.mu.Lock()
	a.results[i] = r
	a.done[i] = true
	start := a.next
	for a.next < len(a.done) && a.done[a.next] {
		a.next++
	}
	end := a.next
	if a.emit == nil || start == end {
		a.mu.Unlock()
		return
	}
	// Emit outside mu: the [start,end) slots are write-once and now
	// final, so they are safe to read unlocked. Taking emitMu *before*
	// releasing mu hands batches to the emitter in frontier order — a
	// later batch's goroutine cannot overtake this one.
	a.emitMu.Lock()
	a.mu.Unlock()
	for j := start; j < end; j++ {
		a.emit(j, a.results[j])
	}
	a.emitMu.Unlock()
}

// completed returns the longest fully-completed prefix of results. After
// a failure this is exactly the set of results safe to use: every slot
// holds a real result, never a placeholder.
func (a *assembler) completed() []Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.results[:a.next]
}
