package harness

import (
	"context"
	"sync"
)

// Executor runs a batch of sweep jobs and assembles their Results in job
// order. Several implementations exist: LocalExecutor, the in-process
// goroutine pool Sweep has always used; ShardExecutor (shard.go), which
// fans jobs out to child worker processes over the JSONL wire protocol
// in wire.go; RemoteExecutor (remote.go) over TCP; and the wrapping
// CachingExecutor (cacheexec.go) and JournalingExecutor (journal.go).
// All promise the same contract, so output is byte-identical whichever
// executor a sweep runs on.
type Executor interface {
	// Execute runs jobs and returns their Results in job order. On
	// failure it returns the error of the lowest-indexed failed job
	// (typically a *JobError) and only the longest fully-completed
	// prefix of results — never zero-value placeholders.
	//
	// emit, when non-nil, is called with (index, result) in strictly
	// ascending index order as the completed prefix grows, so callers
	// can stream finished results while later jobs are still running.
	// Calls are serialized; emit never runs concurrently with itself.
	// After a contained panic (JobError.Panic) the failed index is
	// skipped and later results keep emitting in ascending order, but
	// the returned slice still ends before the first failed slot.
	Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error)
}

// LocalExecutor runs jobs on a pool of goroutines in this process — the
// sweep engine's classic mode.
type LocalExecutor struct {
	// Workers is the pool size; < 1 means DefaultWorkers().
	Workers int
	// Drain, when non-nil, requests a graceful stop when it closes:
	// dispatch halts, in-flight jobs run to completion under ctx, and
	// Execute returns the completed prefix with ErrDrained. A nil
	// channel never drains.
	Drain <-chan struct{}
}

// Execute implements Executor on the in-process pool.
func (e LocalExecutor) Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error) {
	return sweepEmit(ctx, jobs, e.Workers, e.Drain, emit)
}

// assembler collects out-of-order job completions and surfaces them as
// an in-order completed prefix: results[i] becomes visible (and is
// emitted) only once every result before it has landed. Every executor
// shares it, which is what keeps their output byte-identical.
type assembler struct {
	mu      sync.Mutex
	results []Result
	done    []bool
	failed  []bool
	next    int // first index not yet part of the completed prefix
	// firstFailed is the lowest failed slot (len(results) when none):
	// the frontier may advance past failed slots so later results still
	// emit, but the completed prefix ends before the first one.
	firstFailed int
	emit        func(int, Result)
	// emitMu serializes emit batches without holding mu, so a slow
	// consumer stalls only the emitting goroutine — the rest of the pool
	// keeps completing jobs and buffering results.
	emitMu sync.Mutex
}

func newAssembler(n int, emit func(int, Result)) *assembler {
	return &assembler{results: make([]Result, n), done: make([]bool, n), failed: make([]bool, n), firstFailed: n, emit: emit}
}

// complete records job i's result and advances the completed prefix,
// emitting every newly contiguous result in index order.
func (a *assembler) complete(i int, r Result) {
	a.mu.Lock()
	a.results[i] = r
	//lint:ignore hpcclock finish is the tail of this critical section: it releases a.mu itself, and the emitMu it takes is ordered mu→emitMu everywhere
	a.finish(i)
}

// fail marks slot i done-without-result — a contained panic. The
// frontier advances past it so every later result still emits, but
// completed() ends before it: no slot a caller receives ever holds a
// placeholder.
func (a *assembler) fail(i int) {
	a.mu.Lock()
	a.failed[i] = true
	if i < a.firstFailed {
		a.firstFailed = i
	}
	//lint:ignore hpcclock finish is the tail of this critical section: it releases a.mu itself, and the emitMu it takes is ordered mu→emitMu everywhere
	a.finish(i)
}

// finish is the shared tail of complete and fail: called with mu held
// (and releasing it), it advances the frontier and emits the newly
// contiguous non-failed results in index order.
func (a *assembler) finish(i int) {
	a.done[i] = true
	start := a.next
	for a.next < len(a.done) && a.done[a.next] {
		a.next++
	}
	end := a.next
	if a.emit == nil || start == end {
		a.mu.Unlock()
		return
	}
	// Emit outside mu: the [start,end) slots are write-once and now
	// final, so they are safe to read unlocked. Taking emitMu *before*
	// releasing mu hands batches to the emitter in frontier order — a
	// later batch's goroutine cannot overtake this one.
	a.emitMu.Lock()
	a.mu.Unlock()
	for j := start; j < end; j++ {
		if a.failed[j] {
			continue
		}
		a.emit(j, a.results[j])
	}
	a.emitMu.Unlock()
}

// completed returns the longest fully-completed prefix of results,
// ending before the first failed slot. After a failure this is exactly
// the set of results safe to use: every slot holds a real result, never
// a placeholder.
func (a *assembler) completed() []Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	end := a.next
	if a.firstFailed < end {
		end = a.firstFailed
	}
	return a.results[:end]
}
