package harness

import (
	"context"
	"errors"
)

// JournalSink is the write surface JournalingExecutor needs from a sweep
// journal. repro/internal/journal implements it on an fsync'd JSONL
// file; tests use in-memory fakes. Record is called from the assembler's
// in-order emit path, so calls arrive in strictly ascending index order
// and are never concurrent.
type JournalSink interface {
	// Record durably appends one completed (index, Result) pair. A
	// returned error does not fail the sweep — the result is already in
	// hand — but it does mean a crash could lose that slot.
	Record(index int, res Result) error
}

// JournalingExecutor wraps any executor with crash-safe checkpointing:
// every result the inner executor completes is written to Sink *before*
// it is surfaced (write-ahead discipline — a result the caller has seen
// is always on disk), and indexes already present in Done replay as
// instant hits without re-running. Resume is therefore just "reopen the
// journal, load Done, run the same jobs again": only the remainder
// dispatches, and because hits and misses flow through the shared
// in-order assembler, resumed output is byte-identical to an
// uninterrupted run.
type JournalingExecutor struct {
	// Inner runs the jobs not already in Done. Required.
	Inner Executor
	// Sink receives each newly completed (index, Result). Required
	// unless Done alone should replay (nil Sink skips recording).
	Sink JournalSink
	// Done maps job index → already-journaled Result from a previous
	// attempt; those indexes complete immediately. May be nil or empty
	// on a fresh run.
	Done map[int]Result

	// RecordErrors counts results that completed but could not be
	// journaled during the most recent Execute. Written
	// single-threadedly during Execute; read it only after it returns.
	RecordErrors int
}

// Execute implements Executor. Journaled jobs complete immediately; the
// rest are forwarded to the inner executor in their original relative
// order, with results mapped back to their original indices (including
// the index inside a returned *JobError).
func (e *JournalingExecutor) Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error) {
	if e.Inner == nil {
		return nil, errors.New("harness: journaling executor has no inner executor")
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	e.RecordErrors = 0

	asm := newAssembler(len(jobs), emit)
	var missJobs []Job
	var missIdx []int
	for i, job := range jobs {
		if res, ok := e.Done[i]; ok {
			if res.WorkloadID == "" && job.Workload != nil {
				res.WorkloadID = job.Workload.ID()
			}
			asm.complete(i, res)
			continue
		}
		missJobs = append(missJobs, job)
		missIdx = append(missIdx, i)
	}
	if len(missJobs) == 0 {
		return asm.completed(), nil
	}

	_, err := e.Inner.Execute(ctx, missJobs, func(sub int, r Result) {
		orig := missIdx[sub]
		if e.Sink != nil {
			// Record before surfacing: if the append fails the sweep
			// still proceeds, but a result is never handed out while its
			// journal entry is in doubt *behind* one that is on disk.
			if rerr := e.Sink.Record(orig, r); rerr != nil {
				e.RecordErrors++
			}
		}
		asm.complete(orig, r)
	})
	if err != nil {
		var je *JobError
		if errors.As(err, &je) && je.Index >= 0 && je.Index < len(missIdx) {
			err = &JobError{Index: missIdx[je.Index], WorkloadID: je.WorkloadID, Panic: je.Panic, Err: je.Err}
		}
	}
	return asm.completed(), err
}
