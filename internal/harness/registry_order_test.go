package harness

import (
	"context"
	"fmt"
	"maps"
	"math/rand"
	"slices"
	"testing"
)

// orderSpec builds a distinct trivial workload for registration-order
// tests.
func orderSpec(i int) Spec {
	return Spec{
		WorkloadID: fmt.Sprintf("order-w%02d", i),
		Desc:       "registration-order probe",
		Version:    fmt.Sprintf("v%d", i),
		RunFunc: func(ctx context.Context, p Params) (Result, error) {
			return Result{}, nil
		},
	}
}

// TestRegistryOrderIndependence pins the remote-handshake identity:
// Fingerprint, Versions and IDs are functions of the registered set,
// never of registration order. Two fleets that registered the same
// workloads in different init orders must agree they are compatible.
func TestRegistryOrderIndependence(t *testing.T) {
	const n = 12
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = orderSpec(i)
	}

	reference := NewRegistry()
	for _, s := range specs {
		if err := reference.Register(s); err != nil {
			t.Fatalf("register %s: %v", s.WorkloadID, err)
		}
	}
	wantFP := reference.Fingerprint()
	wantIDs := reference.IDs()
	wantVersions := reference.Versions()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(n)
		if trial == 0 { // make sure exact reversal is among the orders
			for i := range order {
				order[i] = n - 1 - i
			}
		}
		r := NewRegistry()
		for _, i := range order {
			if err := r.Register(specs[i]); err != nil {
				t.Fatalf("trial %d: register %s: %v", trial, specs[i].WorkloadID, err)
			}
		}
		if fp := r.Fingerprint(); fp != wantFP {
			t.Errorf("trial %d (order %v): Fingerprint = %s, want %s — registration order leaked into the handshake identity", trial, order, fp, wantFP)
		}
		if ids := r.IDs(); !slices.Equal(ids, wantIDs) {
			t.Errorf("trial %d: IDs = %v, want %v", trial, ids, wantIDs)
		}
		if vs := r.Versions(); !maps.Equal(vs, wantVersions) {
			t.Errorf("trial %d: Versions = %v, want %v", trial, vs, wantVersions)
		}
	}
}

// TestRegistryLookupCaseFoldDeterministic pins the Lookup fix: when two
// IDs differ only in case, a case-insensitive lookup resolves to the
// same (sorted-first) entry regardless of registration order.
func TestRegistryLookupCaseFoldDeterministic(t *testing.T) {
	mk := func(id string) Spec {
		s := orderSpec(0)
		s.WorkloadID = id
		return s
	}
	for trial, order := range [][]string{{"CaseProbe", "caseprobe"}, {"caseprobe", "CaseProbe"}} {
		r := NewRegistry()
		for _, id := range order {
			if err := r.Register(mk(id)); err != nil {
				t.Fatalf("register %s: %v", id, err)
			}
		}
		w, err := r.Lookup("CASEPROBE")
		if err != nil {
			t.Fatalf("trial %d: Lookup: %v", trial, err)
		}
		if got := w.ID(); got != "CaseProbe" {
			t.Errorf("trial %d: Lookup resolved to %q, want the sorted-first %q regardless of registration order", trial, got, "CaseProbe")
		}
	}
}
