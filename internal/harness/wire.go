package harness

// The JSONL wire protocol between a sweep engine and its workers. A
// parent writes one WireJob per line; the worker answers each with one
// WireResult line. Two transports speak it:
//
//   - ShardExecutor (shard.go) over a child process's stdin/stdout,
//     strictly request/response per worker: one job at a time, so the
//     parent always knows which job index an answer — or a crash —
//     belongs to.
//   - RemoteExecutor (remote.go) over TCP to `hpcc worker -listen`
//     processes. The connection opens with a WireHello handshake (both
//     sides exchange registry fingerprints and kernel versions; a
//     mismatched worker is refused), responses travel as WireResponse
//     frames (a WireResult or a heartbeat) in completion order, and a
//     responseTracker holds every answer to the outstanding-request set
//     so duplicated, out-of-range or unsolicited indexes are protocol
//     breaches rather than silent corruption.
//
// Workloads travel by registry ID, so both sides must be built with the
// same workloads registered — that is exactly what the handshake checks.

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WireJob is one serialized sweep job: the line a sharding parent writes
// to a worker's stdin.
type WireJob struct {
	// Index is the job's position in the parent's sweep, echoed back in
	// the WireResult so results reassemble in job order.
	Index int `json:"index"`
	// WorkloadID names the workload in the worker's registry.
	WorkloadID string `json:"workload_id"`
	// Params are the exact parameters the job runs with.
	Params Params `json:"params"`
}

// WireResult is one worker answer: the line a worker writes to stdout
// after running (or failing to run) a job. Exactly one of Result and
// Error is set.
type WireResult struct {
	Index  int     `json:"index"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
	// Panic marks Error as a contained workload panic (recovered in the
	// worker, stack flattened into Error): the parent records a typed
	// JobError{Panic: true} and lets the rest of the sweep proceed
	// instead of cancelling it.
	Panic bool `json:"panic,omitempty"`
}

// EncodeWire writes v as one JSON line. Both sides of the protocol use
// it so framing lives in one place.
func EncodeWire(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encode wire message: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("harness: write wire message: %w", err)
	}
	return nil
}

// DecodeWireJob parses and validates one WireJob line.
func DecodeWireJob(line []byte) (WireJob, error) {
	var j WireJob
	if err := json.Unmarshal(line, &j); err != nil {
		return WireJob{}, fmt.Errorf("harness: decode wire job: %w", err)
	}
	if j.Index < 0 {
		return WireJob{}, fmt.Errorf("harness: wire job has negative index %d", j.Index)
	}
	if j.WorkloadID == "" {
		return WireJob{}, fmt.Errorf("harness: wire job %d has no workload_id", j.Index)
	}
	return j, nil
}

// DecodeWireResult parses and validates one WireResult line.
func DecodeWireResult(line []byte) (WireResult, error) {
	var r WireResult
	if err := json.Unmarshal(line, &r); err != nil {
		return WireResult{}, fmt.Errorf("harness: decode wire result: %w", err)
	}
	if r.Index < 0 {
		return WireResult{}, fmt.Errorf("harness: wire result has negative index %d", r.Index)
	}
	if (r.Result == nil) == (r.Error == "") {
		return WireResult{}, fmt.Errorf("harness: wire result %d must carry exactly one of result and error", r.Index)
	}
	return r, nil
}

// maxWireFrame caps one frame's size: results carry whole rendered
// exhibits, so frames run far past a default line buffer, but an
// unterminated gigabyte is a broken peer, not a big result.
const maxWireFrame = 1 << 26

// ErrTruncatedFrame reports a stream that ended in the middle of a
// frame: the final line had no terminating newline, so its bytes cannot
// be trusted to be the whole message. A line scanner would hand the
// fragment over as if it were complete (and silently drop the loss when
// the fragment happens not to parse); the frame reader makes the tear
// explicit so transports can map it onto the in-flight job.
var ErrTruncatedFrame = errors.New("harness: truncated wire frame")

// frameReader reads newline-delimited wire frames. It is the one
// decoder both executors and workers read the protocol through:
// complete frames come back without their newline, blank lines are
// skipped, io.EOF is returned only at a frame boundary, and a stream
// that ends mid-line fails with ErrTruncatedFrame.
type frameReader struct {
	br *bufio.Reader
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 64*1024)}
}

// next returns the next non-blank frame.
func (fr *frameReader) next() ([]byte, error) {
	var buf []byte
	for {
		chunk, err := fr.br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > maxWireFrame {
			return nil, fmt.Errorf("harness: wire frame exceeds %d bytes", maxWireFrame)
		}
		switch {
		case err == nil:
			line := bytes.TrimSpace(buf)
			if len(line) == 0 {
				buf = buf[:0]
				continue
			}
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		case errors.Is(err, io.EOF):
			if len(bytes.TrimSpace(buf)) == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("%w (stream ended %d bytes into an unterminated line)", ErrTruncatedFrame, len(buf))
		default:
			//lint:ignore hpccwire the heartbeat loop type-asserts net.Error on this error to tell a read deadline from a dead peer; wrapping would hide it
			return nil, err
		}
	}
}

// runWireJob executes one wire job against reg and packages the outcome
// as the WireResult to send back: a per-job failure (unknown ID,
// workload error, contained panic) travels as a result line carrying
// Error, never as a worker death — one bad job must not kill a fleet
// worker.
func runWireJob(ctx context.Context, reg *Registry, job WireJob) WireResult {
	out := WireResult{Index: job.Index}
	wl, err := reg.Lookup(job.WorkloadID)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	res, err := safeRun(ctx, wl, job.Params)
	if err != nil {
		out.Error = err.Error()
		var pe *PanicError
		out.Panic = errors.As(err, &pe)
		return out
	}
	if res.WorkloadID == "" {
		res.WorkloadID = wl.ID()
	}
	out.Result = &res
	return out
}

// ServeWorker runs the worker side of the shard protocol: it reads
// WireJob lines from r until EOF, resolves each workload in reg, runs
// it, and answers with a WireResult line on w. A malformed or truncated
// job line is a protocol breach and kills the worker with an error; the
// parent maps the death onto the in-flight job. This is what
// `hpcc worker` (without -listen) runs.
func ServeWorker(ctx context.Context, reg *Registry, r io.Reader, w io.Writer) error {
	fr := newFrameReader(r)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		line, err := fr.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("harness: worker read jobs: %w", err)
		}
		job, err := DecodeWireJob(line)
		if err != nil {
			return err
		}
		if err := EncodeWire(w, runWireJob(ctx, reg, job)); err != nil {
			return err
		}
	}
}

// WireProto identifies the handshake revision RemoteExecutor and the
// remote worker speak. Bump it when the connection-level protocol (not
// the job payloads) changes incompatibly.
const WireProto = 1

// Handshake roles, recorded in WireHello.Role for diagnostics.
const (
	RoleExecutor = "executor"
	RoleWorker   = "worker"
)

// WireHello is the first frame each side of a remote connection sends:
// the protocol revision plus the identity of its workload registry —
// the condensed fingerprint and the full id → kernel-version map, so a
// mismatch can be reported naming the exact workloads and versions that
// disagree instead of just two opaque hashes. TokenDigest carries the
// fleet auth token in digest form; both sides must present the same
// digest (or none) for the handshake to succeed.
type WireHello struct {
	Proto       int               `json:"proto"`
	Role        string            `json:"role,omitempty"`
	Fingerprint string            `json:"fingerprint"`
	Workloads   map[string]string `json:"workloads,omitempty"`
	TokenDigest string            `json:"token_digest,omitempty"`
}

// ErrTokenMismatch reports a handshake whose fleet auth tokens disagree.
// It is a sentinel so transports can decide policy on it — in particular
// the redial loop gives up immediately, because an auth failure does not
// heal with time the way a crashed process does.
var ErrTokenMismatch = errors.New("harness: fleet auth token mismatch")

// TokenDigest derives the hello form of a shared fleet token. The raw
// secret never crosses the wire: both sides exchange this digest and
// compare in constant time. The empty token maps to the empty digest,
// which is what "no auth configured" looks like on the wire. This is an
// access-control latch against accidental cross-fleet connections, not
// cryptographic channel security — the wire itself is plaintext TCP.
func TokenDigest(token string) string {
	if token == "" {
		return ""
	}
	sum := sha256.Sum256([]byte("hpcc-fleet-token\x00" + token))
	return hex.EncodeToString(sum[:])
}

// HelloFor builds the hello one side of a connection announces for its
// registry.
func HelloFor(reg *Registry, role string) WireHello {
	return WireHello{
		Proto:       WireProto,
		Role:        role,
		Fingerprint: reg.Fingerprint(),
		Workloads:   reg.Versions(),
	}
}

// DecodeWireHello parses and validates one WireHello line.
func DecodeWireHello(line []byte) (WireHello, error) {
	var h WireHello
	if err := json.Unmarshal(line, &h); err != nil {
		return WireHello{}, fmt.Errorf("harness: decode wire hello: %w", err)
	}
	if h.Proto < 1 {
		return WireHello{}, fmt.Errorf("harness: wire hello has no protocol revision (got %d)", h.Proto)
	}
	if h.Fingerprint == "" {
		return WireHello{}, errors.New("harness: wire hello has no registry fingerprint")
	}
	return h, nil
}

// CheckHello decides whether two handshakes are compatible. Workloads
// travel by registry ID and results are trusted as pure functions of
// (ID, Params, kernel version), so the registries must agree exactly; a
// worker built from older code would silently compute different numbers.
// The error names the disagreeing workloads and both kernel versions.
func CheckHello(local, remote WireHello) error {
	if local.Proto != remote.Proto {
		return fmt.Errorf("harness: wire protocol mismatch: local proto %d, remote proto %d", local.Proto, remote.Proto)
	}
	if subtle.ConstantTimeCompare([]byte(local.TokenDigest), []byte(remote.TokenDigest)) != 1 {
		switch {
		case local.TokenDigest == "":
			return fmt.Errorf("%w: peer requires a token and none was supplied (set -token or HPCC_TOKEN)", ErrTokenMismatch)
		case remote.TokenDigest == "":
			return fmt.Errorf("%w: a token was supplied but the peer does not expect one", ErrTokenMismatch)
		default:
			return fmt.Errorf("%w: the supplied token is not the peer's token", ErrTokenMismatch)
		}
	}
	if local.Fingerprint == remote.Fingerprint {
		return nil
	}
	diffs := helloDiffs(local.Workloads, remote.Workloads)
	if len(diffs) == 0 {
		// Fingerprints disagree but the exchanged maps do not pin down
		// why (e.g. a peer that omitted its workload map).
		return fmt.Errorf("harness: registry fingerprint mismatch: local %s, remote %s", local.Fingerprint, remote.Fingerprint)
	}
	const maxListed = 4
	listed := diffs
	if len(listed) > maxListed {
		listed = append(listed[:maxListed:maxListed], fmt.Sprintf("... %d more", len(diffs)-maxListed))
	}
	return fmt.Errorf("harness: registry mismatch (fingerprint local %s, remote %s): %s",
		local.Fingerprint, remote.Fingerprint, strings.Join(listed, "; "))
}

// helloDiffs walks the union of two id → version maps and describes
// every disagreement.
func helloDiffs(local, remote map[string]string) []string {
	ids := make(map[string]bool, len(local)+len(remote))
	for id := range local {
		ids[id] = true
	}
	for id := range remote {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	var diffs []string
	for _, id := range sorted {
		lv, lok := local[id]
		rv, rok := remote[id]
		switch {
		case lok && !rok:
			diffs = append(diffs, fmt.Sprintf("workload %s not registered on the remote worker", id))
		case !lok && rok:
			diffs = append(diffs, fmt.Sprintf("workload %s only registered on the remote worker", id))
		case lv != rv:
			diffs = append(diffs, fmt.Sprintf("workload %s: local version %q, remote version %q", id, lv, rv))
		}
	}
	return diffs
}

// WireResponse is one frame of a remote worker's response stream:
// either a heartbeat (proof of life while long jobs run) or a
// WireResult. The result fields embed flat, so a non-heartbeat frame is
// byte-compatible with the stdin/stdout worker's WireResult lines.
type WireResponse struct {
	Heartbeat bool `json:"heartbeat,omitempty"`
	WireResult
}

// DecodeWireResponse parses one response frame; result validation is
// skipped for heartbeats, which carry no payload.
func DecodeWireResponse(line []byte) (WireResponse, error) {
	var r WireResponse
	if err := json.Unmarshal(line, &r); err != nil {
		return WireResponse{}, fmt.Errorf("harness: decode wire response: %w", err)
	}
	if r.Heartbeat {
		return WireResponse{Heartbeat: true}, nil
	}
	wr, err := DecodeWireResult(line)
	if err != nil {
		return WireResponse{}, err
	}
	return WireResponse{WireResult: wr}, nil
}

// responseTracker holds one worker stream's answers to its questions:
// every response index must match exactly one outstanding request.
// Duplicated, already-answered, out-of-range and never-sent indexes are
// protocol breaches — the caller evicts the worker rather than letting
// a bad frame complete (or re-complete) someone else's job.
type responseTracker struct {
	n           int
	outstanding map[int]bool
	answered    map[int]bool
}

func newResponseTracker(n int) *responseTracker {
	return &responseTracker{n: n, outstanding: make(map[int]bool), answered: make(map[int]bool)}
}

// sent records that job i was dispatched on this stream.
func (t *responseTracker) sent(i int) {
	t.outstanding[i] = true
}

// answer validates a response index and retires it.
func (t *responseTracker) answer(i int) error {
	if i < 0 || i >= t.n {
		return fmt.Errorf("harness: wire result index %d out of range [0,%d)", i, t.n)
	}
	if !t.outstanding[i] {
		if t.answered[i] {
			return fmt.Errorf("harness: duplicate wire result for job %d", i)
		}
		return fmt.Errorf("harness: unsolicited wire result for job %d (never dispatched on this connection)", i)
	}
	delete(t.outstanding, i)
	t.answered[i] = true
	return nil
}

// pending returns the dispatched-but-unanswered job indexes, sorted —
// the set a dying worker strands, which the executor re-dispatches.
func (t *responseTracker) pending() []int {
	out := make([]int, 0, len(t.outstanding))
	for i := range t.outstanding {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
