package harness

// The JSONL wire protocol between a sharding sweep engine and its child
// worker processes. A parent (ShardExecutor, shard.go) writes one
// WireJob per line to a worker's stdin; the worker (ServeWorker — the
// `hpcc worker` subcommand) answers each with one WireResult line on
// stdout. The protocol is strictly request/response per worker: a worker
// handles one job at a time, so the parent always knows which job index
// an answer — or a crash — belongs to. Workloads travel by registry ID,
// so both sides must be built with the same workloads registered.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// WireJob is one serialized sweep job: the line a sharding parent writes
// to a worker's stdin.
type WireJob struct {
	// Index is the job's position in the parent's sweep, echoed back in
	// the WireResult so results reassemble in job order.
	Index int `json:"index"`
	// WorkloadID names the workload in the worker's registry.
	WorkloadID string `json:"workload_id"`
	// Params are the exact parameters the job runs with.
	Params Params `json:"params"`
}

// WireResult is one worker answer: the line a worker writes to stdout
// after running (or failing to run) a job. Exactly one of Result and
// Error is set.
type WireResult struct {
	Index  int     `json:"index"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// EncodeWire writes v as one JSON line. Both sides of the protocol use
// it so framing lives in one place.
func EncodeWire(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encode wire message: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("harness: write wire message: %w", err)
	}
	return nil
}

// DecodeWireJob parses and validates one WireJob line.
func DecodeWireJob(line []byte) (WireJob, error) {
	var j WireJob
	if err := json.Unmarshal(line, &j); err != nil {
		return WireJob{}, fmt.Errorf("harness: decode wire job: %w", err)
	}
	if j.Index < 0 {
		return WireJob{}, fmt.Errorf("harness: wire job has negative index %d", j.Index)
	}
	if j.WorkloadID == "" {
		return WireJob{}, fmt.Errorf("harness: wire job %d has no workload_id", j.Index)
	}
	return j, nil
}

// DecodeWireResult parses and validates one WireResult line.
func DecodeWireResult(line []byte) (WireResult, error) {
	var r WireResult
	if err := json.Unmarshal(line, &r); err != nil {
		return WireResult{}, fmt.Errorf("harness: decode wire result: %w", err)
	}
	if r.Index < 0 {
		return WireResult{}, fmt.Errorf("harness: wire result has negative index %d", r.Index)
	}
	if (r.Result == nil) == (r.Error == "") {
		return WireResult{}, fmt.Errorf("harness: wire result %d must carry exactly one of result and error", r.Index)
	}
	return r, nil
}

// newWireScanner sizes a line scanner for wire traffic: results carry
// whole rendered exhibits, so lines run far past bufio's default cap.
func newWireScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	return sc
}

// ServeWorker runs the worker side of the shard protocol: it reads
// WireJob lines from r until EOF, resolves each workload in reg, runs
// it, and answers with a WireResult line on w — a per-job failure
// (unknown ID, workload error) travels back as a result line, not a
// worker death. A malformed job line is a protocol breach and kills the
// worker with an error; the parent maps the death onto the in-flight
// job. This is what `hpcc worker` runs.
func ServeWorker(ctx context.Context, reg *Registry, r io.Reader, w io.Writer) error {
	sc := newWireScanner(r)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		job, err := DecodeWireJob(line)
		if err != nil {
			return err
		}
		out := WireResult{Index: job.Index}
		wl, err := reg.Lookup(job.WorkloadID)
		if err != nil {
			out.Error = err.Error()
		} else if res, err := wl.Run(ctx, job.Params); err != nil {
			out.Error = err.Error()
		} else {
			if res.WorkloadID == "" {
				res.WorkloadID = wl.ID()
			}
			out.Result = &res
		}
		if err := EncodeWire(w, out); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("harness: worker read jobs: %w", err)
	}
	return nil
}
