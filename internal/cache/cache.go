// Package cache is a content-addressed on-disk cache of workload results.
// Phantom-mode simulations are deterministic functions of (workload ID,
// parameters, kernel version), so their Results can be served from disk
// instead of recomputed — the paper's headline exhibit (LINPACK N=25000 on
// the 528-node Delta model) costs seconds of host time per run and is
// regenerated identically by every report, sweep re-run and CI diff gate.
//
// # Position in the pipeline
//
// Workloads (repro/internal/harness) produce Results; harness.CachingExecutor
// consults a Cache before dispatching each job to its inner executor and
// records each miss's result afterwards; the hpcc CLI wires the -cache flag
// on run/sweep/report to this package. Cached and uncached output is
// byte-identical: a hit replays the exact Result the workload produced,
// through the same in-order emit path.
//
// # Layout and concurrency
//
// A cache is a directory of one JSON file per entry, named by the entry's
// content address: sha256 over the workload ID, the canonical parameter
// encoding (harness.Params.Canonical — deterministic regardless of map
// insertion order) and the workload's kernel version, truncated to 32 hex
// digits. Writes are append-safe: each Put writes a temp file and renames
// it into place, so a reader never observes a partial entry and concurrent
// writers of the same key simply race to an identical file. Any read
// problem — missing file, truncated or corrupt JSON, an entry whose
// recorded identity does not match the key — is a miss, never an error:
// the caller recomputes and overwrites.
//
// Version is what keeps the cache honest across code changes: a workload
// that declares one (harness.Versioned / Spec.Version) invalidates all its
// stale entries by bumping it. See docs/WORKLOADS.md for the bump
// discipline.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
)

// DefaultDir is where the hpcc CLI keeps its result cache unless -cache
// points elsewhere.
const DefaultDir = ".hpcc-cache"

// Schema is the entry format version written by this package. Entries
// from a newer schema read as misses rather than being misinterpreted.
const Schema = 1

// keyHexLen truncates content addresses to 128 bits — collision-free for
// any realistic population of workload points.
const keyHexLen = 32

// Cache is a handle on a cache directory. Open it with Open; the zero
// value is not usable.
type Cache struct {
	dir string
}

// Open returns a handle on the cache in dir. The directory is created on
// first Put, not here, so Open on a missing cache is cheap and a pure-hit
// read path never creates directories.
func Open(dir string) (*Cache, error) {
	if strings.TrimSpace(dir) == "" {
		return nil, errors.New("cache: empty cache directory")
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's directory.
func (c *Cache) Dir() string { return c.dir }

// Key computes the content address of one workload point: sha256 over the
// workload ID, harness.Params.Canonical and the kernel version, truncated
// to 32 hex digits. Two runs of the same point share a Key however their
// Params maps were built; a version bump moves every point to fresh keys.
func Key(workloadID string, p harness.Params, version string) string {
	sum := sha256.Sum256([]byte(workloadID + "\x00" + p.Canonical() + "\x00" + version))
	return hex.EncodeToString(sum[:])[:keyHexLen]
}

// entry is the JSON stored per cache file. WorkloadID, ParamsKey and
// Version repeat the identity the Key hashes, so Get can verify a file
// really answers the question being asked instead of trusting file names.
type entry struct {
	Schema     int            `json:"schema"`
	WorkloadID string         `json:"workload"`
	ParamsKey  string         `json:"params_key"`
	Version    string         `json:"version,omitempty"`
	Result     harness.Result `json:"result"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached Result for a workload point, and whether one was
// found. Every failure mode — no entry, unreadable file, truncated or
// corrupt JSON, schema from the future, identity mismatch — is a miss:
// the caller recomputes, and the next Put repairs the entry.
func (c *Cache) Get(workloadID string, p harness.Params, version string) (harness.Result, bool) {
	b, err := os.ReadFile(c.path(Key(workloadID, p, version)))
	if err != nil {
		return harness.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return harness.Result{}, false
	}
	if e.Schema > Schema {
		return harness.Result{}, false
	}
	if e.WorkloadID != workloadID || e.ParamsKey != p.Canonical() || e.Version != version {
		return harness.Result{}, false
	}
	return e.Result, true
}

// Put records the Result of one workload point. The entry is written to a
// temp file and renamed into place, so concurrent writers are safe (the
// rename is atomic; same-key racers produce identical entries) and a
// crashed writer leaves at worst a stray temp file, never a corrupt entry.
func (c *Cache) Put(workloadID string, p harness.Params, version string, res harness.Result) error {
	e := entry{
		Schema:     Schema,
		WorkloadID: workloadID,
		ParamsKey:  p.Canonical(),
		Version:    version,
		Result:     res,
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: encode entry %s: %w", workloadID, err)
	}
	b = append(b, '\n')
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("cache: create %s: %w", c.dir, err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write entry %s: %w", workloadID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write entry %s: %w", workloadID, err)
	}
	if err := os.Rename(tmp.Name(), c.path(Key(workloadID, p, version))); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: commit entry %s: %w", workloadID, err)
	}
	return nil
}

// PruneStats reports what a Prune pass did.
type PruneStats struct {
	Kept       int   // entries remaining
	KeptBytes  int64 // bytes remaining
	Evicted    int   // entries removed
	FreedBytes int64 // bytes removed
}

// Prune evicts cache entries by age and total size: entries whose file
// modification time is older than maxAge go first (maxAge <= 0 means no
// age bound), then the oldest remaining entries until the cache fits in
// maxSize bytes (maxSize <= 0 means no size bound). Eviction order is
// oldest-written-first: Get does not refresh modification times, so this
// is FIFO by write (or rewrite) time, not LRU — a frequently hit entry
// written long ago is evicted before a never-hit entry written
// yesterday. A missing cache directory prunes to nothing. Entries that
// disappear mid-prune (a concurrent pruner) are counted as already gone;
// non-entry files in the directory are left alone.
func (c *Cache) Prune(maxAge time.Duration, maxSize int64) (PruneStats, error) {
	var st PruneStats
	dirents, err := os.ReadDir(c.dir)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("cache: read %s: %w", c.dir, err)
	}
	type entryFile struct {
		name string
		mod  time.Time
		size int64
	}
	var files []entryFile
	for _, d := range dirents {
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			continue
		}
		info, err := d.Info()
		if err != nil {
			continue // raced away; nothing to evict
		}
		files = append(files, entryFile{name: d.Name(), mod: info.ModTime(), size: info.Size()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })

	var total int64
	for _, f := range files {
		total += f.size
	}
	cutoff := time.Time{}
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
	}
	evict := func(f entryFile) error {
		if err := os.Remove(filepath.Join(c.dir, f.name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("cache: evict %s: %w", f.name, err)
		}
		st.Evicted++
		st.FreedBytes += f.size
		total -= f.size
		return nil
	}
	kept := files[:0]
	for _, f := range files {
		if maxAge > 0 && f.mod.Before(cutoff) {
			if err := evict(f); err != nil {
				return st, err
			}
			continue
		}
		kept = append(kept, f)
	}
	for _, f := range kept {
		if maxSize <= 0 || total <= maxSize {
			st.Kept++
			st.KeptBytes += f.size
			continue
		}
		if err := evict(f); err != nil {
			return st, err
		}
	}
	return st, nil
}

// Len reports how many entries the cache currently holds — a convenience
// for tests and diagnostics, not a hot path.
func (c *Cache) Len() (int, error) {
	names, err := os.ReadDir(c.dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("cache: read %s: %w", c.dir, err)
	}
	n := 0
	for _, d := range names {
		if strings.HasSuffix(d.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
