package cache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightCoalescesConcurrentCalls(t *testing.T) {
	var f Flight
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	vals := make([]any, n)
	shareds := make([]bool, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := f.Do("k", func() (any, error) {
			close(started)
			<-release
			calls.Add(1)
			return "answer", nil
		})
		if err != nil {
			t.Error(err)
		}
		vals[0], shareds[0] = v, shared
	}()
	<-started // the leader holds the key; everyone else must join it
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do("k", func() (any, error) {
				calls.Add(1)
				return "answer", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shareds[i] = v, shared
		}(i)
	}
	// Release the leader only once every follower has joined its call —
	// otherwise a slow-to-schedule follower arrives after the flight
	// lands and (correctly) starts a fresh one.
	for {
		f.mu.Lock()
		joined := 0
		if c := f.calls["k"]; c != nil {
			joined = c.waiters
		}
		f.mu.Unlock()
		if joined == n-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	sharedCount := 0
	for i := range vals {
		if vals[i] != "answer" {
			t.Fatalf("call %d got %v", i, vals[i])
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != n-1 {
		t.Fatalf("%d of %d calls shared, want all but the leader", sharedCount, n)
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight
	a, sharedA, _ := f.Do("a", func() (any, error) { return 1, nil })
	b, sharedB, _ := f.Do("b", func() (any, error) { return 2, nil })
	if a != 1 || b != 2 || sharedA || sharedB {
		t.Fatalf("distinct keys interfered: a=%v(%v) b=%v(%v)", a, sharedA, b, sharedB)
	}
}

func TestFlightErrorsReachEveryWaiterThenClear(t *testing.T) {
	var f Flight
	boom := errors.New("boom")
	if _, _, err := f.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("leader error %v, want boom", err)
	}
	// The failed call must not poison the key: the next call runs afresh.
	v, shared, err := f.Do("k", func() (any, error) { return "fine", nil })
	if err != nil || shared || v != "fine" {
		t.Fatalf("key stayed poisoned after an error: v=%v shared=%v err=%v", v, shared, err)
	}
}
