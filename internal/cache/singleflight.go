package cache

// Request coalescing for cache-fronted services: when several callers
// ask for the same key while the first computation is still running, the
// extras wait for that result instead of recomputing it. hpcc serve uses
// this so a burst of identical HTTP requests runs the workload once and
// writes the cache once — without it, every request in the burst would
// miss (the entry is only written after the run) and the "cache" would
// multiply load exactly when it matters most.

import "sync"

// Flight deduplicates concurrent calls by key. The zero value is ready
// to use; a Flight must not be copied after first use.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters int // joined callers, guarded by Flight.mu; tests use it to sync
	val     any
	err     error
}

// Do runs fn and returns its result, unless another Do with the same key
// is already in flight — then it waits for that call and returns its
// result instead, with shared=true. The result of a call is delivered to
// every waiter verbatim, errors included; a new call with the same key
// after the first completes runs fn again (results are not cached here —
// that is the Cache's job).
func (f *Flight) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		c.waiters++
		f.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	if f.calls == nil {
		f.calls = make(map[string]*flightCall)
	}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	// Unregister before waking the waiters: a Do arriving after the wake
	// must start a fresh call, not join one that has already finished.
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
