package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

func testResult(id string, n float64) harness.Result {
	res := harness.Result{
		WorkloadID: id,
		Title:      "title of " + id,
		Paper:      "paper claim",
		Text:       "rendered table\nrow\n",
	}
	res.AddMetric("gflops", n, "GFLOPS")
	res.Metrics[0].Dir = harness.DirHigher
	return res
}

func params(kv ...string) harness.Params {
	p := harness.Params{Quick: true, Seed: 7}
	for i := 0; i+1 < len(kv); i += 2 {
		p = p.WithValue(kv[i], kv[i+1])
	}
	return p
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("   "); err == nil {
		t.Fatal("Open accepted a blank directory")
	}
}

func TestMissOnEmptyCache(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("linpack/delta", params(), "v1"); ok {
		t.Fatal("hit on an empty cache")
	}
}

// TestRoundTripByteIdentity is the core promise: a Result served from the
// cache must be byte-identical (as JSON, hence as rendered text too) to
// the one that was stored.
func TestRoundTripByteIdentity(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := params("n", "25000", "nb", "16")
	want := testResult("linpack/delta", 12.283817261373618)
	if err := c.Put("linpack/delta", p, "v1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("linpack/delta", p, "v1")
	if !ok {
		t.Fatal("miss after Put")
	}
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Fatalf("round trip changed the result:\nput: %s\ngot: %s", wb, gb)
	}
}

// TestKeyCanonicalizesParams: the key must not depend on map insertion
// order, only on canonical content.
func TestKeyCanonicalizesParams(t *testing.T) {
	a := harness.Params{Values: map[string]string{"n": "8192", "nb": "16"}}
	b := harness.Params{Values: map[string]string{"nb": "16", "n": "8192"}}
	if Key("w", a, "v") != Key("w", b, "v") {
		t.Fatal("key depends on map insertion order")
	}
	if Key("w", a, "v") == Key("w", a.WithValue("n", "4096"), "v") {
		t.Fatal("key ignores parameter values")
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := params()
	if err := c.Put("w", p, "v1", testResult("w", 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("w", p, "v1"); !ok {
		t.Fatal("miss at the version that was stored")
	}
	if _, ok := c.Get("w", p, "v2"); ok {
		t.Fatal("version bump did not invalidate the entry")
	}
	if _, ok := c.Get("w", p, ""); ok {
		t.Fatal("empty version hit a v1 entry")
	}
}

// TestCorruptEntriesAreMisses: every damaged-entry shape reads as a miss,
// never an error — the caller recomputes and the next Put repairs it.
func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := params()
	if err := c.Put("w", p, "v1", testResult("w", 1)); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, Key("w", p, "v1")+".json")
	good, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("not json at all")},
		{"truncated", good[:len(good)/2]},
		{"empty", nil},
		{"future-schema", []byte(`{"schema": 999, "workload": "w"}`)},
		{"identity-mismatch", []byte(`{"schema": 1, "workload": "other", "params_key": "quick=true;seed=7", "result": {"workload": "other", "text": "t"}}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(file, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("w", p, "v1"); ok {
				t.Fatalf("%s entry served as a hit", tc.name)
			}
			// Put must repair the damaged entry in place.
			if err := c.Put("w", p, "v1", testResult("w", 1)); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("w", p, "v1"); !ok {
				t.Fatal("Put did not repair the entry")
			}
		})
	}
}

// TestConcurrentWriters hammers one cache directory from many goroutines
// mixing same-key and distinct-key writes; every subsequent read must be
// a valid hit with the right content.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const points = 8
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < points; i++ {
				id := fmt.Sprintf("w/%d", i)
				p := params("i", fmt.Sprint(i))
				if err := c.Put(id, p, "v1", testResult(id, float64(i))); err != nil {
					errs <- err
					return
				}
				if _, ok := c.Get(id, p, "v1"); !ok {
					errs <- fmt.Errorf("writer %d: miss for %s right after Put", w, id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < points; i++ {
		id := fmt.Sprintf("w/%d", i)
		got, ok := c.Get(id, params("i", fmt.Sprint(i)), "v1")
		if !ok {
			t.Fatalf("miss for %s after concurrent writes", id)
		}
		if m, _ := got.Metric("gflops"); m.Value != float64(i) {
			t.Fatalf("%s: got metric %v, want %d", id, m.Value, i)
		}
	}
	n, err := c.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != points {
		t.Fatalf("cache holds %d entries, want %d", n, points)
	}
	// No stray temp files may survive the stampede.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range names {
		if filepath.Ext(d.Name()) == ".tmp" {
			t.Fatalf("stray temp file %s left behind", d.Name())
		}
	}
}

// TestPruneByAge: entries older than -max-age are evicted, newer ones
// survive, and repeat prunes are no-ops.
func TestPruneByAge(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("w/%d", i)
		if err := c.Put(id, params(), "v1", harness.Result{WorkloadID: id, Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// Backdate two entries far past any cutoff.
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 4 {
		t.Fatalf("glob: %v (%d files)", err, len(names))
	}
	sort.Strings(names)
	old := time.Now().Add(-48 * time.Hour)
	for _, name := range names[:2] {
		if err := os.Chtimes(name, old, old); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Prune(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 2 || st.Kept != 2 {
		t.Fatalf("prune stats %+v, want 2 evicted / 2 kept", st)
	}
	if n, _ := c.Len(); n != 2 {
		t.Fatalf("cache holds %d entries after prune, want 2", n)
	}
	st, err = c.Prune(24*time.Hour, 0)
	if err != nil || st.Evicted != 0 {
		t.Fatalf("second prune evicted %d (err %v), want 0", st.Evicted, err)
	}
}

// TestPruneBySize: the oldest entries go first until the cache fits the
// byte budget; newest entries survive and still serve hits.
func TestPruneBySize(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("w/%d", i)
		if err := c.Put(id, params(), "v1", harness.Result{WorkloadID: id, Text: "payload"}); err != nil {
			t.Fatal(err)
		}
		// Space the mtimes so eviction order is deterministic.
		key := Key(id, params(), "v1")
		when := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, key+".json"), when, when); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(filepath.Join(dir, key+".json"))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	budget := sizes[3] + sizes[4] // room for exactly the two newest
	st, err := c.Prune(0, budget)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 3 || st.Kept != 2 || st.KeptBytes > budget {
		t.Fatalf("prune stats %+v (budget %d), want 3 evicted / 2 kept", st, budget)
	}
	if _, ok := c.Get("w/4", params(), "v1"); !ok {
		t.Fatal("newest entry evicted by size prune")
	}
	if _, ok := c.Get("w/0", params(), "v1"); ok {
		t.Fatal("oldest entry survived size prune")
	}
}

// TestPruneMissingDir: pruning a cache that was never written is a
// successful no-op.
func TestPruneMissingDir(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Prune(time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st != (PruneStats{}) {
		t.Fatalf("prune of missing dir reported %+v", st)
	}
}
