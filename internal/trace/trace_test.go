package trace

import (
	"math"
	"strings"
	"testing"
)

func TestPhaseString(t *testing.T) {
	if PhaseCompute.String() != "compute" || PhaseSend.String() != "send" || PhaseRecvWait.String() != "recv" {
		t.Fatal("phase names wrong")
	}
	if Phase(42).String() != "Phase(42)" {
		t.Fatal("unknown phase name wrong")
	}
}

func TestRecorderCollects(t *testing.T) {
	r := NewRecorder(2)
	r.Proc(0).Add(PhaseCompute, 0, 1)
	r.Proc(1).Add(PhaseSend, 0.5, 0.75)
	r.Proc(0).Add(PhaseRecvWait, 1, 1.5)
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// sorted by proc then start
	if recs[0].Proc != 0 || recs[1].Proc != 0 || recs[2].Proc != 1 {
		t.Fatalf("records not sorted by proc: %+v", recs)
	}
	if recs[0].Span.Start > recs[1].Span.Start {
		t.Fatal("records not sorted by start within proc")
	}
}

func TestZeroDurationDropped(t *testing.T) {
	r := NewRecorder(1)
	r.Proc(0).Add(PhaseCompute, 1, 1)
	r.Proc(0).Add(PhaseCompute, 2, 1) // inverted: dropped too
	if len(r.Records()) != 0 {
		t.Fatal("zero/negative duration spans should be dropped")
	}
}

func TestNilProcViewSafe(t *testing.T) {
	var v *ProcView
	v.Add(PhaseCompute, 0, 1) // must not panic
}

func TestPhaseTotals(t *testing.T) {
	r := NewRecorder(2)
	r.Proc(0).Add(PhaseCompute, 0, 2)
	r.Proc(0).Add(PhaseSend, 2, 3)
	r.Proc(1).Add(PhaseCompute, 0, 4)

	all := r.PhaseTotals(-1)
	if math.Abs(all[PhaseCompute]-6) > 1e-12 {
		t.Fatalf("total compute = %g, want 6", all[PhaseCompute])
	}
	if math.Abs(all[PhaseSend]-1) > 1e-12 {
		t.Fatalf("total send = %g, want 1", all[PhaseSend])
	}
	p0 := r.PhaseTotals(0)
	if math.Abs(p0[PhaseCompute]-2) > 1e-12 {
		t.Fatalf("p0 compute = %g, want 2", p0[PhaseCompute])
	}
}

func TestUtilization(t *testing.T) {
	r := NewRecorder(2)
	r.Proc(0).Add(PhaseCompute, 0, 5)
	r.Proc(1).Add(PhaseCompute, 0, 2.5)
	u := r.Utilization(5)
	if math.Abs(u[0]-1.0) > 1e-12 || math.Abs(u[1]-0.5) > 1e-12 {
		t.Fatalf("utilization = %v, want [1 0.5]", u)
	}
	if u := r.Utilization(0); u[0] != 0 {
		t.Fatal("zero makespan should give zero utilization")
	}
}

func TestGantt(t *testing.T) {
	r := NewRecorder(3)
	r.Proc(0).Add(PhaseCompute, 0, 10)
	r.Proc(1).Add(PhaseRecvWait, 0, 5)
	r.Proc(1).Add(PhaseCompute, 5, 10)
	out := r.Gantt(10, 20, 2) // only first 2 procs
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "C") {
		t.Fatalf("P0 row missing compute glyphs: %q", lines[0])
	}
	if !strings.Contains(lines[1], "R") || !strings.Contains(lines[1], "C") {
		t.Fatalf("P1 row missing phases: %q", lines[1])
	}
	// row 1 should start with R and end with C
	bar := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if bar[0] != 'R' || bar[len(bar)-1] != 'C' {
		t.Fatalf("P1 phase layout wrong: %q", bar)
	}
}

func TestGanttEmptyRecorder(t *testing.T) {
	r := NewRecorder(1)
	out := r.Gantt(0, 10, 0)
	if !strings.Contains(out, "....") {
		t.Fatalf("empty recorder should render idle row: %q", out)
	}
}
