// Package trace records per-process virtual-time activity during a
// simulated run: which phase (compute, send, receive-wait) each node was in
// and for how long. The runtime writes records; reports aggregate them into
// utilization figures and Gantt-style renderings.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vtime"
)

// Phase labels a span of node activity.
type Phase int

// Phases recorded by the runtime.
const (
	PhaseCompute Phase = iota
	PhaseSend
	PhaseRecvWait
	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseSend:
		return "send"
	case PhaseRecvWait:
		return "recv"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Record is one activity span on one process.
type Record struct {
	Proc  int
	Phase Phase
	Span  vtime.Span
}

// Recorder collects records. Each simulated process must append only from
// its own goroutine via a ProcView; Recorder merges them at the end, so no
// locking is needed on the hot path.
type Recorder struct {
	perProc [][]Record
}

// NewRecorder creates a Recorder for n processes.
func NewRecorder(n int) *Recorder {
	return &Recorder{perProc: make([][]Record, n)}
}

// Proc returns the single-goroutine view for process rank.
func (r *Recorder) Proc(rank int) *ProcView {
	return &ProcView{rec: r, rank: rank}
}

// ProcView appends records for one process; it must be used only from that
// process's goroutine.
type ProcView struct {
	rec  *Recorder
	rank int
}

// Add records a span of the given phase. Zero-duration spans are dropped.
func (v *ProcView) Add(p Phase, start, end float64) {
	if v == nil || v.rec == nil || end <= start {
		return
	}
	v.rec.perProc[v.rank] = append(v.rec.perProc[v.rank],
		Record{Proc: v.rank, Phase: p, Span: vtime.Span{Start: start, End: end}})
}

// Records returns all records sorted by (proc, start time).
func (r *Recorder) Records() []Record {
	var out []Record
	for _, rs := range r.perProc {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Span.Start < out[j].Span.Start
	})
	return out
}

// PhaseTotals sums span durations by phase for one process rank, or across
// all processes if rank is negative.
func (r *Recorder) PhaseTotals(rank int) map[Phase]float64 {
	totals := make(map[Phase]float64, numPhases)
	for p, rs := range r.perProc {
		if rank >= 0 && p != rank {
			continue
		}
		for _, rec := range rs {
			totals[rec.Phase] += rec.Span.Duration()
		}
	}
	return totals
}

// Utilization returns the fraction of the makespan each process spent in
// PhaseCompute. makespan must be positive.
func (r *Recorder) Utilization(makespan float64) []float64 {
	out := make([]float64, len(r.perProc))
	if makespan <= 0 {
		return out
	}
	for p, rs := range r.perProc {
		var busy float64
		for _, rec := range rs {
			if rec.Phase == PhaseCompute {
				busy += rec.Span.Duration()
			}
		}
		out[p] = busy / makespan
	}
	return out
}

// Gantt renders an ASCII timeline of the first maxProcs processes over
// [0, makespan) with the given width in characters: 'C' compute, 'S' send,
// 'R' receive-wait, '.' idle. Later records overwrite earlier ones within a
// cell, which is fine at the resolutions used in reports.
func (r *Recorder) Gantt(makespan float64, width, maxProcs int) string {
	if width < 1 {
		width = 60
	}
	n := len(r.perProc)
	if maxProcs > 0 && n > maxProcs {
		n = maxProcs
	}
	var b strings.Builder
	glyph := map[Phase]byte{PhaseCompute: 'C', PhaseSend: 'S', PhaseRecvWait: 'R'}
	for p := 0; p < n; p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		if makespan > 0 {
			for _, rec := range r.perProc[p] {
				lo := int(rec.Span.Start / makespan * float64(width))
				hi := int(rec.Span.End / makespan * float64(width))
				if hi >= width {
					hi = width - 1
				}
				for i := lo; i <= hi && i >= 0; i++ {
					row[i] = glyph[rec.Phase]
				}
			}
		}
		fmt.Fprintf(&b, "P%03d |%s|\n", p, row)
	}
	return b.String()
}
