// Package vtime provides virtual-time clocks for performance simulation.
//
// Every simulated node in the runtime owns a Clock. Computation advances a
// clock by a modelled duration; receiving a message merges the sender's
// timestamp Lamport-style (the receiver clock becomes the maximum of its own
// value and the message arrival time). Because clock values are derived only
// from modelled costs and message timestamps, the simulated makespan of a
// program whose receives name exact sources is independent of how the host
// scheduler interleaves goroutines.
package vtime

import (
	"fmt"
	"math"
)

// Clock is a monotonically non-decreasing virtual clock measured in seconds.
// The zero value is a clock at time zero, ready to use. Clock is not safe for
// concurrent use; each simulated process owns exactly one.
type Clock struct {
	t float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.t }

// Advance moves the clock forward by d seconds. Negative or NaN durations
// are ignored so that a buggy cost model cannot move time backwards.
func (c *Clock) Advance(d float64) {
	if d > 0 && !math.IsNaN(d) {
		c.t += d
	}
}

// MergeAtLeast raises the clock to t if t is later than the current time.
// It implements the Lamport max-merge used on message receipt.
func (c *Clock) MergeAtLeast(t float64) {
	if t > c.t {
		c.t = t
	}
}

// Set forces the clock to an absolute time. It is intended for restoring
// checkpointed state in tests; Set panics if it would move time backwards.
func (c *Clock) Set(t float64) {
	if t < c.t {
		panic(fmt.Sprintf("vtime: Set(%g) would move clock backwards from %g", t, c.t))
	}
	c.t = t
}

// Span is a half-open virtual-time interval [Start, End).
type Span struct {
	Start, End float64
}

// Duration returns End-Start, or 0 for an inverted span.
func (s Span) Duration() float64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Overlaps reports whether two spans intersect in a set of positive measure.
func (s Span) Overlaps(o Span) bool {
	return s.Start < o.End && o.Start < s.End
}

// Makespan returns the maximum of the given clock times; it is the virtual
// wall-clock duration of a parallel program whose processes finished at the
// given times. An empty slice yields 0.
func Makespan(times []float64) float64 {
	max := 0.0
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	return max
}

// Format renders a duration in seconds using an appropriate SI unit, e.g.
// "74.0us", "1.25ms", "3.20s". It is used by reports and traces.
func Format(seconds float64) string {
	abs := math.Abs(seconds)
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.1fns", seconds*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.1fus", seconds*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2fms", seconds*1e3)
	case abs < 120:
		return fmt.Sprintf("%.2fs", seconds)
	case abs < 7200:
		return fmt.Sprintf("%.1fmin", seconds/60)
	default:
		return fmt.Sprintf("%.2fh", seconds/3600)
	}
}
