package vtime

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %g, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(2.5)
	if got := c.Now(); got != 4.0 {
		t.Fatalf("Now() = %g, want 4.0", got)
	}
}

func TestClockAdvanceIgnoresNegativeAndNaN(t *testing.T) {
	var c Clock
	c.Advance(3)
	c.Advance(-1)
	c.Advance(math.NaN())
	if got := c.Now(); got != 3 {
		t.Fatalf("Now() = %g, want 3 (negative/NaN advances must be ignored)", got)
	}
}

func TestClockMergeAtLeast(t *testing.T) {
	var c Clock
	c.Advance(5)
	c.MergeAtLeast(3) // earlier: no effect
	if c.Now() != 5 {
		t.Fatalf("merge with earlier time changed clock to %g", c.Now())
	}
	c.MergeAtLeast(9)
	if c.Now() != 9 {
		t.Fatalf("merge with later time gave %g, want 9", c.Now())
	}
}

func TestClockSetPanicsOnBackwardMove(t *testing.T) {
	var c Clock
	c.Advance(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	c.Set(1)
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: any sequence of Advance/MergeAtLeast leaves the clock
	// monotonically non-decreasing.
	f := func(deltas []float64) bool {
		var c Clock
		prev := 0.0
		for i, d := range deltas {
			if i%2 == 0 {
				c.Advance(d)
			} else {
				c.MergeAtLeast(d)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanDuration(t *testing.T) {
	if d := (Span{1, 3}).Duration(); d != 2 {
		t.Fatalf("Duration = %g, want 2", d)
	}
	if d := (Span{3, 1}).Duration(); d != 0 {
		t.Fatalf("inverted span Duration = %g, want 0", d)
	}
}

func TestSpanOverlaps(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{Span{0, 1}, Span{1, 2}, false}, // touching, half-open
		{Span{0, 2}, Span{1, 3}, true},
		{Span{1, 3}, Span{0, 2}, true},
		{Span{0, 1}, Span{2, 3}, false},
		{Span{0, 10}, Span{4, 5}, true}, // containment
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: Overlaps(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestMakespan(t *testing.T) {
	if m := Makespan(nil); m != 0 {
		t.Fatalf("Makespan(nil) = %g, want 0", m)
	}
	if m := Makespan([]float64{1, 7, 3}); m != 7 {
		t.Fatalf("Makespan = %g, want 7", m)
	}
}

func TestMakespanIsMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// sanitize: makespan only meaningful for non-negative times
		for i := range xs {
			xs[i] = math.Abs(xs[i])
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		m := Makespan(xs)
		for _, x := range xs {
			if x > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{5e-9, "5.0ns"},
		{74e-6, "74.0us"},
		{1.25e-3, "1.25ms"},
		{3.2, "3.20s"},
		{800, "13.3min"},
		{7200, "2.00h"},
	}
	for _, c := range cases {
		if got := Format(c.in); got != c.want {
			t.Errorf("Format(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatNoEmpty(t *testing.T) {
	f := func(x float64) bool {
		s := Format(math.Abs(x))
		return strings.TrimSpace(s) != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
