// Oceanmodel: the NOAA/EPA Grand-Challenge workload — a shallow-water
// dynamical core on a periodic C-grid. Demonstrates exact mass
// conservation, bounded energy, serial/distributed agreement, and scaling
// on the Delta model.
//
//	go run ./examples/oceanmodel
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/apps/shallow"
	"repro/internal/machine"
	"repro/internal/report"
)

func main() {
	params := shallow.DefaultParams()
	fmt.Printf("shallow-water model: gravity-wave speed %.0f m/s, CFL %.2f\n\n",
		math.Sqrt(params.G*params.Depth), params.CFL())

	// Serial physics checks.
	s := shallow.NewState(64, 64)
	s.GaussianBump(1.0)
	m0, e0 := s.Mass(), s.Energy(params)
	for i := 0; i < 500; i++ {
		s.Step(params)
	}
	fmt.Printf("after 500 steps: mass drift %.2e (exactly conserved), energy ratio %.4f\n\n",
		math.Abs(s.Mass()-m0), s.Energy(params)/e0)

	// Distributed equals serial bitwise.
	ref := shallow.RunSerial(48, 48, 100, params)
	out, err := shallow.RunDistributed(shallow.Config{
		NX: 48, NY: 48, Steps: 100, Procs: 6,
		Params: params, Model: machine.Delta(),
	})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for k := range ref.H {
		if ref.H[k] != out.State.H[k] {
			same = false
		}
	}
	fmt.Printf("distributed (6 nodes) vs serial after 100 steps: bitwise identical = %v\n\n", same)

	// Strong scaling on the Delta.
	t := report.NewTable("Shallow-water strong scaling, 1056x1056 grid, Delta model",
		"Procs", "Time(s)", "Speedup")
	var t1 float64
	for i, procs := range []int{1, 4, 16, 66, 264, 528} {
		o, err := shallow.RunDistributed(shallow.Config{
			NX: 1056, NY: 1056, Steps: 20, Procs: procs,
			Params: params, Model: machine.Delta(), Phantom: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			t1 = o.Time
		}
		t.AddRow(report.Cellf("%d", procs), report.Cellf("%.3f", o.Time),
			report.Cellf("%.1f", t1/o.Time))
	}
	fmt.Print(t.Render())
}
