// Aerosciences: the CAS consortium workload — a CFD relaxation kernel on
// the Delta model. Solves a heated-plate Laplace problem with verified
// numerics, then measures strong scaling to all 528 nodes.
//
//	go run ./examples/aerosciences
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/stencil"
	"repro/internal/machine"
	"repro/internal/report"
)

func main() {
	delta := machine.Delta()

	// Verified run: distributed result equals the serial reference.
	const n, iters = 64, 200
	serial := stencil.SolveSerial(n, n, iters)
	dist, err := stencil.RunDistributed(stencil.Config{
		NX: n, NY: n, Iters: iters, Procs: 8, Model: delta,
	})
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	for i := range serial {
		if d := abs(serial[i] - dist.Grid[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("verification: %dx%d plate, %d iterations on 8 nodes — max |serial-distributed| = %g\n\n",
		n, n, iters, maxDiff)
	fmt.Printf("centre temperature after relaxation: %.2f (boundary: %g hot / 0 cold)\n\n",
		dist.Grid[(n/2)*n+n/2], stencil.Hot)

	// Strong scaling at Delta scale (phantom mode).
	pts, err := stencil.StrongScaling(delta, 1056, 1056, 20,
		[]int{1, 4, 16, 66, 264, 528})
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("CFD kernel strong scaling, 1056x1056 grid, Delta model",
		"Procs", "Time(s)", "Speedup", "Efficiency")
	for _, p := range pts {
		t.AddRow(report.Cellf("%d", p.Procs), report.Cellf("%.3f", p.Time),
			report.Cellf("%.1f", p.Speedup), report.Cellf("%.2f", p.Efficiency))
	}
	fmt.Print(t.Render())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
