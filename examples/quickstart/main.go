// Quickstart: build the Touchstone Delta model, factor a real matrix on a
// small simulated process grid with residual verification, then reproduce
// the paper's headline LINPACK number in phantom mode.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/linpack"
	"repro/internal/machine"
)

func main() {
	// 1. The machine the paper describes.
	delta := machine.Delta()
	fmt.Printf("%s: %d nodes (%dx%d mesh), %.1f GFLOPS peak\n\n",
		delta.Name, delta.Nodes(), delta.Rows, delta.Cols, delta.PeakGFlops())

	// 2. Real numerics on a 2x4 sub-grid: distributed LU with a residual
	// check against the original matrix.
	real, err := linpack.Run(linpack.Config{
		N: 256, NB: 16, GridRows: 2, GridCols: 4,
		Model: delta, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real-mode check: N=%d on 2x4 grid, normalized residual %.3f (O(1) = correct)\n\n",
		real.N, real.Residual)

	// 3. The paper's experiment at full Delta scale (phantom numerics).
	prog := core.NewProgram()
	out, err := prog.RunExperiment("E4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
