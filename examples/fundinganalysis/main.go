// Fundinganalysis: the programmatic side of the paper as data — regenerate
// the FY92-93 budget table, derive growth and shares, and cross-reference
// the responsibilities matrix with the consortium rosters.
//
//	go run ./examples/fundinganalysis
package main

import (
	"fmt"

	"repro/internal/agency"
	"repro/internal/funding"
	"repro/internal/report"
)

func main() {
	lines := funding.FY9293()

	fmt.Print(funding.Table().Render())
	fmt.Println()

	// Which agencies carry each program component?
	for _, c := range agency.Components() {
		var names []string
		var budget93 float64
		for _, a := range agency.All() {
			if !a.HasRole(c) {
				continue
			}
			names = append(names, a.Name)
			for _, l := range lines {
				if l.Agency == a.Name {
					budget93 += l.FY93
				}
			}
		}
		fmt.Printf("%s (%s): %d agencies, combined FY93 budgets $%.1fM\n",
			c, c.Title(), len(names), budget93)
	}
	fmt.Println()

	// Growth leaders.
	t := report.NewTable("FY92 -> FY93 growth leaders", "Agency", "Growth %")
	best, bestG := "", -1.0
	for _, l := range lines {
		if g := l.Growth(); g > bestG {
			best, bestG = l.Agency, g
		}
		t.AddRow(l.Agency, report.Cellf("%+.1f", l.Growth()*100))
	}
	fmt.Print(t.Render())
	fmt.Printf("\nfastest-growing agency: %s (%.0f%%)\n\n", best, bestG*100)

	// Consortium rosters from the paper.
	fmt.Print(agency.RosterTable().Render())
	fmt.Println()
	fmt.Println("CAS industrial participants:")
	for _, name := range agency.CASIndustry() {
		fmt.Printf("  - %s\n", name)
	}
}
