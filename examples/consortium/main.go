// Consortium: moving Grand-Challenge datasets over the 1992 consortium
// network. Shows why the paper's network figure matters: the same 100 MB
// result set takes a tenth of a second over CASA HIPPI and four hours over
// a 56 kbps regional tail, and concurrent users share the thin links.
//
//	go run ./examples/consortium
package main

import (
	"fmt"
	"log"

	"repro/internal/nren"
	"repro/internal/report"
	"repro/internal/topo"
	"repro/internal/vtime"
)

func main() {
	g := topo.Consortium()
	const dataset = 100e6 // a 100 MB simulation output

	// One user at each partner site pulls the dataset from the Delta.
	t := report.NewTable("100 MB dataset from Caltech (Delta host) to each partner",
		"Destination", "Route", "Time")
	for _, site := range topo.ConsortiumSites() {
		if site == topo.SiteCaltech {
			continue
		}
		s := nren.New(g)
		f, err := s.Transfer(topo.SiteCaltech, site, dataset, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Run(); err != nil {
			log.Fatal(err)
		}
		route := ""
		for i, l := range f.PathLinks {
			if i > 0 {
				route += " + "
			}
			route += l
		}
		t.AddRow(site, route, vtime.Format(f.Duration()))
	}
	fmt.Print(t.Render())
	fmt.Println()

	// Three CASA users sharing the Caltech-SDSC HIPPI link fairly.
	s := nren.New(g)
	var flows []*nren.Flow
	for i := 0; i < 3; i++ {
		f, err := s.Transfer(topo.SiteCaltech, topo.SiteSDSC, dataset, 0)
		if err != nil {
			log.Fatal(err)
		}
		flows = append(flows, f)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("three concurrent 100 MB transfers Caltech -> SDSC (max-min fair HIPPI sharing):")
	for i, f := range flows {
		fmt.Printf("  flow %d: %s at %.1f MB/s average\n",
			i+1, vtime.Format(f.Duration()), f.AvgRateBps()/1e6)
	}
}
